"""Cache-miss classification.

Categories (paper section 3.2):

* **cold** -- first reference to the block by this processor;
* **true sharing** -- the block had been cached and was invalidated by a
  remote write, and the missing processor (eventually) references a word
  that was remotely written while it did not hold the block;
* **false sharing** -- invalidated by a remote write, but the processor
  only references words the remote writer(s) did not touch;
* **eviction** -- the block was displaced by a conflicting block (we fold
  explicit ``flush``-instruction departures into this class; see
  DESIGN.md);
* **drop** -- the block was self-invalidated by the competitive-update
  counter;
* **exclusive requests** -- not misses, but counted alongside: upgrades
  of a read-shared block already cached by the writer (WI only).

True/false resolution is deferred in the style of Dubois et al.: a
sharing miss opens a *pending* record holding the set of words remotely
written while the block was away; it resolves to *true* at the first
local reference to one of those words, and to *false* when the block
leaves the cache again (or at end of run) without such a reference.
"""

from __future__ import annotations

import enum
from typing import Any, Dict, Optional, Set, Tuple

from repro.memsys.cache import EvictReason


class MissClass(enum.Enum):
    COLD = "cold"
    TRUE_SHARING = "true"
    FALSE_SHARING = "false"
    EVICTION = "eviction"
    DROP = "drop"

    @property
    def useful(self) -> bool:
        """Paper: cold-start and true-sharing misses are *useful*."""
        return self in (MissClass.COLD, MissClass.TRUE_SHARING)


class _Pending:
    """Unresolved sharing miss: true iff a remote-written word gets
    referenced before the block leaves again.

    Holds the write-log sequence number at departure rather than a word
    snapshot: the invalidating write may still be in flight (applied at
    the writer's cache after our miss is recorded), so the remote-word
    set must be evaluated live at each reference.
    """

    __slots__ = ("leave_seq",)

    def __init__(self, leave_seq: int) -> None:
        self.leave_seq = leave_seq


class MissClassifier:
    """Online classifier; one instance per simulated machine."""

    def __init__(self) -> None:
        #: miss counts by category
        self.counts: Dict[MissClass, int] = {c: 0 for c in MissClass}
        #: exclusive-request (upgrade) transaction count
        self.exclusive_requests = 0
        #: total shared references (for miss-rate computation)
        self.shared_refs = 0

        # per-block global write log: word -> (writer, seq)
        self._writes: Dict[int, Dict[int, Tuple[int, int]]] = {}
        self._write_seq: Dict[int, int] = {}

        # (node, block) -> seq at the moment the block left the cache
        self._leave_seq: Dict[Tuple[int, int], int] = {}
        # (node, block) -> why the block left
        self._leave_reason: Dict[Tuple[int, int], EvictReason] = {}
        # (node, block) ever cached (cold detection)
        self._touched: Set[Tuple[int, int]] = set()
        # (node, block) -> pending true/false record
        self._pending: Dict[Tuple[int, int], _Pending] = {}

    # ------------------------------------------------------------------
    # feed (called by protocol controllers)
    # ------------------------------------------------------------------

    def record_write(self, block: int, word: int, writer: int) -> None:
        """A write to ``word`` of ``block`` by ``writer`` became globally
        visible (processed at the home / owner)."""
        seq = self._write_seq.get(block, 0) + 1
        self._write_seq[block] = seq
        self._writes.setdefault(block, {})[word] = (writer, seq)

    def record_leave(self, node: int, block: int,
                     reason: EvictReason) -> None:
        """``block`` left ``node``'s cache for ``reason``.

        Must be called *before* :meth:`record_write` for the write that
        causes an invalidation, so the write is seen as happening while
        the block is away.
        """
        key = (node, block)
        self._leave_seq[key] = self._write_seq.get(block, 0)
        self._leave_reason[key] = reason
        self._resolve_pending(key)

    def record_miss(self, node: int, block: int, word: int) -> None:
        """Classify a demand miss by ``node`` on ``word`` of ``block``."""
        key = (node, block)
        if key not in self._touched:
            self._touched.add(key)
            self.counts[MissClass.COLD] += 1
            return
        reason = self._leave_reason.get(key, EvictReason.REPLACEMENT)
        if reason is EvictReason.DROP:
            self.counts[MissClass.DROP] += 1
        elif reason is EvictReason.INVALIDATION:
            leave = self._leave_seq.get(key, 0)
            if self._remotely_written(node, block, leave, word):
                self.counts[MissClass.TRUE_SHARING] += 1
            else:
                # defer: true iff a remote-written word is referenced
                # during this caching lifetime
                self._pending[key] = _Pending(leave)
        else:  # REPLACEMENT or FLUSH
            self.counts[MissClass.EVICTION] += 1

    def record_reference(self, node: int, block: int, word: int,
                         count: bool = True) -> None:
        """A shared reference (hit or miss) by ``node``.

        ``count=False`` re-registers a reference for pending-resolution
        purposes without inflating the shared-reference total (used when
        a miss's fill finally delivers the value the reference observed).
        """
        if count:
            self.shared_refs += 1
        pend = self._pending.get((node, block))
        if pend is not None and self._remotely_written(
                node, block, pend.leave_seq, word):
            del self._pending[(node, block)]
            self.counts[MissClass.TRUE_SHARING] += 1

    def record_upgrade(self, node: int, block: int) -> None:
        self.exclusive_requests += 1

    # ------------------------------------------------------------------

    def _remotely_written(self, node: int, block: int, leave_seq: int,
                          word: int) -> bool:
        """Was ``word`` written by another processor after ``leave_seq``?"""
        log = self._writes.get(block)
        if not log:
            return False
        entry = log.get(word)
        if entry is None:
            return False
        writer, seq = entry
        return seq > leave_seq and writer != node

    def _resolve_pending(self, key: Tuple[int, int]) -> None:
        if key in self._pending:
            del self._pending[key]
            self.counts[MissClass.FALSE_SHARING] += 1

    # ------------------------------------------------------------------

    def finalize(self) -> None:
        """Resolve all deferred sharing misses (end of run => false)."""
        for key in list(self._pending):
            self._resolve_pending(key)

    # ------------------------------------------------------------------
    # snapshot / restore
    # ------------------------------------------------------------------

    def snapshot_state(self):
        return (dict(self.counts), self.exclusive_requests,
                self.shared_refs,
                {b: dict(log) for b, log in self._writes.items()},
                dict(self._write_seq), dict(self._leave_seq),
                dict(self._leave_reason), set(self._touched),
                {k: p.leave_seq for k, p in self._pending.items()})

    def restore_state(self, snap) -> None:
        (counts, exclusive_requests, shared_refs, writes, write_seq,
         leave_seq, leave_reason, touched, pending) = snap
        self.counts = dict(counts)
        self.exclusive_requests = exclusive_requests
        self.shared_refs = shared_refs
        self._writes = {b: dict(log) for b, log in writes.items()}
        self._write_seq = dict(write_seq)
        self._leave_seq = dict(leave_seq)
        self._leave_reason = dict(leave_reason)
        self._touched = set(touched)
        self._pending = {k: _Pending(ls) for k, ls in pending.items()}

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------

    @property
    def total_misses(self) -> int:
        return sum(self.counts.values())

    def useful_misses(self) -> int:
        return sum(n for c, n in self.counts.items() if c.useful)

    def useless_misses(self) -> int:
        return sum(n for c, n in self.counts.items() if not c.useful)

    def miss_rate(self) -> float:
        if self.shared_refs == 0:
            return 0.0
        return self.total_misses / self.shared_refs

    def as_dict(self) -> Dict[str, int]:
        out = {c.value: n for c, n in self.counts.items()}
        out["exclusive_requests"] = self.exclusive_requests
        out["total"] = self.total_misses
        return out
