"""Communication-traffic classification (subsystems S11, S12).

Implements the miss-categorization algorithm of Dubois et al. as
extended by Bianchini & Kontothanassis, and the update-categorization
algorithm of Bianchini & Kontothanassis, exactly as used in the paper's
figures 9/10, 12/13 and 15/16.
"""

from repro.classify.misses import MissClassifier, MissClass
from repro.classify.updates import UpdateClassifier, UpdateClass

__all__ = ["MissClassifier", "MissClass", "UpdateClassifier", "UpdateClass"]
