"""Direct-mapped data cache over flat preallocated arrays.

64 KB, 64-byte blocks by default (1024 lines).  The cache is a passive
structure driven by the per-protocol cache controller; it stores per-word
values (so programs running on the simulator observe functionally
coherent data) and per-line protocol metadata (install sequence numbers
used to discard stale invalidations, and the competitive-update counter).

Array layout (the hot-path contract):

* ``_tags`` -- one stdlib ``array('q')`` slot per cache line, holding
  the resident block number or ``-1``.  The per-access probe touches
  only this array: a tag miss never reaches a Python object.
* ``_lines`` -- the per-slot payload records (:class:`CacheLine`),
  parallel to ``_tags``.  A line's protocol state is the plain int
  ``state_code`` (index into :data:`CACHE_STATES`); the ``state``
  property keeps the enum view for observers and tests.
* ``_lru`` -- per-set slot order, maintained only when
  ``associativity > 1`` (a direct-mapped set has nothing to order).

Slot ``i`` belongs to set ``i // associativity``; a block maps to set
``block & mask`` when the set count is a power of two (the common
case), else ``block % num_sets``.

The cache also hosts the *watcher* registry used by the spin-wait fast
path: any mutation of a block's local copy (install, update, invalidate)
fires the block's watchers, which is how a spinning processor learns that
its cached value may have changed.

``snapshot_state()`` / ``restore_state()`` copy the flat arrays and
per-line payloads in O(lines), preserving the identity of resident
:class:`CacheLine` records so callbacks captured before a snapshot stay
valid after a restore.
"""

from __future__ import annotations

import enum
from array import array
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional


class CacheState(enum.Enum):
    INVALID = "I"
    SHARED = "S"       # WI: read-shared, clean
    MODIFIED = "M"     # WI: exclusive dirty
    VALID = "V"        # PU/CU: valid copy kept coherent by updates
    RETAINED = "R"     # PU/CU: effectively-private; writes stay local
    EXCLUSIVE = "E"    # MESI: exclusive clean; silent upgrade to M


#: dense enum view indexed by the per-line ``state_code`` ints below
CACHE_STATES = (CacheState.INVALID, CacheState.SHARED,
                CacheState.MODIFIED, CacheState.VALID,
                CacheState.RETAINED, CacheState.EXCLUSIVE)

#: plain-int state codes (INVALID must stay 0: occupancy tests rely on
#: ``state_code`` being falsy exactly for invalid lines)
STATE_INVALID = 0
STATE_SHARED = 1
STATE_MODIFIED = 2
STATE_VALID = 3
STATE_RETAINED = 4
STATE_EXCLUSIVE = 5

for _code, _state in enumerate(CACHE_STATES):
    _state.code = _code
del _code, _state


def _state_code(state) -> int:
    """Accept either a :class:`CacheState` member or its int code."""
    return state if type(state) is int else state.code


#: why a block left the cache (drives miss classification)
class EvictReason(enum.Enum):
    REPLACEMENT = "replacement"
    INVALIDATION = "invalidation"   # remote write under WI
    DROP = "drop"                   # CU self-invalidation
    FLUSH = "flush"                 # explicit block flush instruction


@dataclass
class EvictionInfo:
    """Returned by :meth:`Cache.install` when a victim was displaced."""
    block: int
    state: CacheState
    data: Dict[int, Any]


class CacheLine:
    __slots__ = ("block", "state_code", "data", "seq", "update_count",
                 "dirty_words")

    def __init__(self, block: int, state,
                 data: Optional[Dict[int, Any]] = None, seq: int = -1):
        self.block = block
        #: plain-int protocol state (index into CACHE_STATES)
        self.state_code = _state_code(state)
        #: word-aligned address -> value
        self.data: Dict[int, Any] = dict(data) if data else {}
        #: sequence number of the installing transaction (stale-INV guard)
        self.seq = seq
        #: competitive-update counter (updates since last local reference)
        self.update_count = 0
        #: words written locally while RETAINED (flushed on recall)
        self.dirty_words: Dict[int, Any] = {}

    @property
    def state(self) -> CacheState:
        return CACHE_STATES[self.state_code]

    @state.setter
    def state(self, value) -> None:
        self.state_code = _state_code(value)


class Cache:
    """A set-associative cache for one node (direct-mapped by default,
    as in the paper; LRU replacement within a set)."""

    def __init__(self, num_lines: int, block_size: int,
                 associativity: int = 1) -> None:
        if num_lines < 1:
            raise ValueError("cache needs at least one line")
        if associativity < 1 or num_lines % associativity:
            raise ValueError(
                f"associativity {associativity} must divide the "
                f"{num_lines}-line cache")
        self.num_lines = num_lines
        self.block_size = block_size
        self.associativity = associativity
        self.num_sets = num_lines // associativity
        #: mask for the power-of-two set count (the common case); the
        #: lookup path is per-access hot, where `&` beats `%`
        self._set_mask = (self.num_sets - 1
                          if self.num_sets & (self.num_sets - 1) == 0
                          else None)
        #: flat tag array: resident block per slot, -1 = empty
        self._tags = array("q", [-1]) * num_lines
        #: per-slot payload records, parallel to _tags
        self._lines: List[Optional[CacheLine]] = [None] * num_lines
        #: per set: occupied slots in LRU order (index 0 = least
        #: recent); only maintained for associativity > 1
        self._lru: Optional[List[List[int]]] = (
            None if associativity == 1
            else [[] for _ in range(self.num_sets)])
        #: block -> callbacks fired when the local copy of block changes
        self._watchers: Dict[int, List[Callable[[], None]]] = {}

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------

    def index_of(self, block: int) -> int:
        """The set index of ``block``."""
        mask = self._set_mask
        if mask is not None:
            return block & mask
        return block % self.num_sets

    def lookup(self, block: int) -> Optional[CacheLine]:
        """The line holding ``block``, or None.  Touches LRU."""
        mask = self._set_mask
        s = block & mask if mask is not None else block % self.num_sets
        if self._lru is None:                     # direct-mapped
            if self._tags[s] == block:
                line = self._lines[s]
                if line.state_code:
                    return line
            return None
        base = s * self.associativity
        for slot in range(base, base + self.associativity):
            if self._tags[slot] == block:
                line = self._lines[slot]
                if not line.state_code:
                    return None
                lru = self._lru[s]
                if lru[-1] != slot:               # move to MRU position
                    lru.remove(slot)
                    lru.append(slot)
                return line
        return None

    def peek(self, block: int) -> Optional[CacheLine]:
        """The line holding ``block``, or None -- WITHOUT touching LRU.

        For observers (the coherence sanitizer, invariant checks): a
        peek must never perturb replacement order.
        """
        s = self.index_of(block)
        base = s * self.associativity
        for slot in range(base, base + self.associativity):
            if self._tags[slot] == block:
                line = self._lines[slot]
                if not line.state_code:
                    return None
                return line
        return None

    def contains(self, block: int) -> bool:
        return self.lookup(block) is not None

    def _set_slots(self, s: int):
        """Occupied slots of set ``s`` in LRU order (oldest first)."""
        if self._lru is None:
            return (s,) if self._tags[s] != -1 else ()
        return self._lru[s]

    def iter_lines(self):
        """Yield every resident (non-INVALID) line, sets in index
        order, within a set in LRU order (oldest first)."""
        for s in range(self.num_sets):
            for slot in self._set_slots(s):
                line = self._lines[slot]
                if line.state_code:
                    yield line

    def resident_blocks(self) -> List[int]:
        return [line.block for line in self.iter_lines()]

    # ------------------------------------------------------------------
    # mutation (all mutators fire watchers)
    # ------------------------------------------------------------------

    def install(self, block: int, state, data: Dict[int, Any],
                seq: int = -1) -> Optional[EvictionInfo]:
        """Install ``block``; returns eviction info if a different valid
        block was displaced (the set's LRU victim)."""
        code = _state_code(state)
        s = self.index_of(block)
        evicted = None
        if self._lru is None:                     # direct-mapped
            slot = s
            tag = self._tags[slot]
            if tag != -1 and tag != block:
                victim = self._lines[slot]
                if victim.state_code:
                    evicted = EvictionInfo(
                        victim.block, CACHE_STATES[victim.state_code],
                        dict(victim.data))
        else:
            lru = self._lru[s]
            base = s * self.associativity
            slot = -1
            for cand in range(base, base + self.associativity):
                if self._tags[cand] == block:     # re-install in place
                    slot = cand
                    lru.remove(slot)
                    lru.append(slot)
                    break
            if slot < 0:
                if len(lru) >= self.associativity:
                    slot = lru.pop(0)             # LRU victim
                    victim = self._lines[slot]
                    if victim.state_code:
                        evicted = EvictionInfo(
                            victim.block,
                            CACHE_STATES[victim.state_code],
                            dict(victim.data))
                else:
                    for cand in range(base, base + self.associativity):
                        if self._tags[cand] == -1:
                            slot = cand
                            break
                lru.append(slot)
        self._tags[slot] = block
        line = self._lines[slot]
        if line is None:
            self._lines[slot] = CacheLine(block, code, data, seq)
        else:                                     # reuse the record
            line.block = block
            line.state_code = code
            line.data = dict(data) if data else {}
            line.seq = seq
            line.update_count = 0
            if line.dirty_words:
                line.dirty_words = {}
        self._fire(block)
        if evicted is not None:
            # a spinner parked on the victim must notice it left
            self._fire(evicted.block)
        return evicted

    def invalidate(self, block: int) -> Optional[CacheLine]:
        """Drop ``block`` if present; returns the old line (for
        writeback decisions) or None."""
        s = self.index_of(block)
        base = s * self.associativity
        for slot in range(base, base + self.associativity):
            if self._tags[slot] == block:
                line = self._lines[slot]
                if not line.state_code:
                    return None
                # detach the record: callers keep reading the returned
                # line's fields after the drop
                self._tags[slot] = -1
                self._lines[slot] = None
                if self._lru is not None:
                    self._lru[s].remove(slot)
                self._fire(block)
                return line
        return None

    def write_word(self, block: int, word: int, value: Any) -> bool:
        """Update one word of a cached block (local write or incoming
        update).  Returns False if the block is not cached."""
        line = self.lookup(block)
        if line is None:
            return False
        line.data[word] = value
        self._fire(block)
        return True

    def set_state(self, block: int, state) -> None:
        line = self.lookup(block)
        if line is None:
            raise KeyError(f"block {block} not cached")
        line.state_code = _state_code(state)
        self._fire(block)

    def read_word(self, block: int, word: int) -> Any:
        line = self.lookup(block)
        if line is None:
            raise KeyError(f"block {block} not cached")
        return line.data.get(word, 0)

    # ------------------------------------------------------------------
    # watchers (spin-wait fast path)
    # ------------------------------------------------------------------

    def watch(self, block: int, callback: Callable[[], None]) -> None:
        """Register a one-shot callback fired on the next change to the
        local copy of ``block``."""
        self._watchers.setdefault(block, []).append(callback)

    def unwatch_all(self, block: int) -> None:
        self._watchers.pop(block, None)

    def _fire(self, block: int) -> None:
        cbs = self._watchers.pop(block, None)
        if cbs:
            for cb in cbs:
                cb()

    # ------------------------------------------------------------------
    # snapshot / restore (O(lines) array + payload copies)
    # ------------------------------------------------------------------

    def snapshot_state(self):
        lines = []
        for slot in range(self.num_lines):
            line = self._lines[slot] if self._tags[slot] != -1 else None
            if line is None:
                lines.append(None)
            else:
                lines.append((line.block, line.state_code,
                              dict(line.data), line.seq,
                              line.update_count,
                              dict(line.dirty_words)))
        lru = (None if self._lru is None
               else [list(order) for order in self._lru])
        watchers = {b: list(cbs) for b, cbs in self._watchers.items()}
        return self._tags[:], lines, lru, watchers

    def restore_state(self, snap) -> None:
        tags, lines, lru, watchers = snap
        self._tags[:] = tags
        for slot, rec in enumerate(lines):
            if rec is None:
                self._lines[slot] = None
                continue
            line = self._lines[slot]
            if line is None:
                line = self._lines[slot] = CacheLine(rec[0], rec[1])
            line.block = rec[0]
            line.state_code = rec[1]
            line.data = dict(rec[2])
            line.seq = rec[3]
            line.update_count = rec[4]
            line.dirty_words = dict(rec[5])
        if lru is not None:
            self._lru = [list(order) for order in lru]
        self._watchers = {b: list(cbs) for b, cbs in watchers.items()}

    # ------------------------------------------------------------------

    def occupancy(self) -> int:
        return len(self.resident_blocks())
