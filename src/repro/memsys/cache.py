"""Direct-mapped data cache.

64 KB, 64-byte blocks by default (1024 lines).  The cache is a passive
structure driven by the per-protocol cache controller; it stores per-word
values (so programs running on the simulator observe functionally
coherent data) and per-line protocol metadata (install sequence numbers
used to discard stale invalidations, and the competitive-update counter).

The cache also hosts the *watcher* registry used by the spin-wait fast
path: any mutation of a block's local copy (install, update, invalidate)
fires the block's watchers, which is how a spinning processor learns that
its cached value may have changed.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional


class CacheState(enum.Enum):
    INVALID = "I"
    SHARED = "S"       # WI: read-shared, clean
    MODIFIED = "M"     # WI: exclusive dirty
    VALID = "V"        # PU/CU: valid copy kept coherent by updates
    RETAINED = "R"     # PU/CU: effectively-private; writes stay local


#: why a block left the cache (drives miss classification)
class EvictReason(enum.Enum):
    REPLACEMENT = "replacement"
    INVALIDATION = "invalidation"   # remote write under WI
    DROP = "drop"                   # CU self-invalidation
    FLUSH = "flush"                 # explicit block flush instruction


@dataclass
class EvictionInfo:
    """Returned by :meth:`Cache.install` when a victim was displaced."""
    block: int
    state: CacheState
    data: Dict[int, Any]


class CacheLine:
    __slots__ = ("block", "state", "data", "seq", "update_count",
                 "dirty_words")

    def __init__(self, block: int, state: CacheState,
                 data: Optional[Dict[int, Any]] = None, seq: int = -1):
        self.block = block
        self.state = state
        #: word-aligned address -> value
        self.data: Dict[int, Any] = dict(data) if data else {}
        #: sequence number of the installing transaction (stale-INV guard)
        self.seq = seq
        #: competitive-update counter (updates since last local reference)
        self.update_count = 0
        #: words written locally while RETAINED (flushed on recall)
        self.dirty_words: Dict[int, Any] = {}


class Cache:
    """A set-associative cache for one node (direct-mapped by default,
    as in the paper; LRU replacement within a set)."""

    def __init__(self, num_lines: int, block_size: int,
                 associativity: int = 1) -> None:
        if num_lines < 1:
            raise ValueError("cache needs at least one line")
        if associativity < 1 or num_lines % associativity:
            raise ValueError(
                f"associativity {associativity} must divide the "
                f"{num_lines}-line cache")
        self.num_lines = num_lines
        self.block_size = block_size
        self.associativity = associativity
        self.num_sets = num_lines // associativity
        #: mask for the power-of-two set count (the common case); the
        #: lookup path is per-access hot, where `&` beats `%`
        self._set_mask = (self.num_sets - 1
                          if self.num_sets & (self.num_sets - 1) == 0
                          else None)
        #: per set: lines in LRU order (index 0 = least recent)
        self._sets: List[List[CacheLine]] = [[] for _ in
                                             range(self.num_sets)]
        #: block -> callbacks fired when the local copy of block changes
        self._watchers: Dict[int, List[Callable[[], None]]] = {}

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------

    def index_of(self, block: int) -> int:
        """The set index of ``block``."""
        mask = self._set_mask
        if mask is not None:
            return block & mask
        return block % self.num_sets

    def lookup(self, block: int) -> Optional[CacheLine]:
        """The line holding ``block``, or None.  Touches LRU."""
        mask = self._set_mask
        ways = self._sets[block & mask if mask is not None
                          else block % self.num_sets]
        for i, line in enumerate(ways):
            if line.block == block:
                if line.state is CacheState.INVALID:
                    return None
                if i != len(ways) - 1:          # move to MRU position
                    ways.append(ways.pop(i))
                return line
        return None

    def peek(self, block: int) -> Optional[CacheLine]:
        """The line holding ``block``, or None -- WITHOUT touching LRU.

        For observers (the coherence sanitizer, invariant checks): a
        peek must never perturb replacement order.
        """
        for line in self._sets[self.index_of(block)]:
            if line.block == block:
                if line.state is CacheState.INVALID:
                    return None
                return line
        return None

    def contains(self, block: int) -> bool:
        return self.lookup(block) is not None

    def resident_blocks(self) -> List[int]:
        return [ln.block for ways in self._sets for ln in ways
                if ln.state is not CacheState.INVALID]

    # ------------------------------------------------------------------
    # mutation (all mutators fire watchers)
    # ------------------------------------------------------------------

    def install(self, block: int, state: CacheState,
                data: Dict[int, Any], seq: int = -1
                ) -> Optional[EvictionInfo]:
        """Install ``block``; returns eviction info if a different valid
        block was displaced (the set's LRU victim)."""
        ways = self._sets[self.index_of(block)]
        evicted = None
        for i, line in enumerate(ways):
            if line.block == block:
                ways.pop(i)
                break
        if len(ways) >= self.associativity:
            victim = ways.pop(0)                # LRU
            if victim.state is not CacheState.INVALID:
                evicted = EvictionInfo(victim.block, victim.state,
                                       dict(victim.data))
        ways.append(CacheLine(block, state, data, seq))
        self._fire(block)
        if evicted is not None:
            # a spinner parked on the victim must notice it left
            self._fire(evicted.block)
        return evicted

    def invalidate(self, block: int) -> Optional[CacheLine]:
        """Drop ``block`` if present; returns the old line (for
        writeback decisions) or None."""
        ways = self._sets[self.index_of(block)]
        for i, line in enumerate(ways):
            if line.block == block and \
                    line.state is not CacheState.INVALID:
                ways.pop(i)
                self._fire(block)
                return line
        return None

    def write_word(self, block: int, word: int, value: Any) -> bool:
        """Update one word of a cached block (local write or incoming
        update).  Returns False if the block is not cached."""
        line = self.lookup(block)
        if line is None:
            return False
        line.data[word] = value
        self._fire(block)
        return True

    def set_state(self, block: int, state: CacheState) -> None:
        line = self.lookup(block)
        if line is None:
            raise KeyError(f"block {block} not cached")
        line.state = state
        self._fire(block)

    def read_word(self, block: int, word: int) -> Any:
        line = self.lookup(block)
        if line is None:
            raise KeyError(f"block {block} not cached")
        return line.data.get(word, 0)

    # ------------------------------------------------------------------
    # watchers (spin-wait fast path)
    # ------------------------------------------------------------------

    def watch(self, block: int, callback: Callable[[], None]) -> None:
        """Register a one-shot callback fired on the next change to the
        local copy of ``block``."""
        self._watchers.setdefault(block, []).append(callback)

    def unwatch_all(self, block: int) -> None:
        self._watchers.pop(block, None)

    def _fire(self, block: int) -> None:
        cbs = self._watchers.pop(block, None)
        if cbs:
            for cb in cbs:
                cb()

    # ------------------------------------------------------------------

    def occupancy(self) -> int:
        return len(self.resident_blocks())
