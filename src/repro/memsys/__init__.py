"""Per-node memory system: cache, write buffer, memory module, directory
(subsystems S3-S5)."""

from repro.memsys.cache import Cache, CacheLine, CacheState, EvictionInfo
from repro.memsys.writebuffer import WriteBuffer, PendingWrite
from repro.memsys.memory import MemoryModule
from repro.memsys.directory import Directory, DirEntry, DirState

__all__ = [
    "Cache", "CacheLine", "CacheState", "EvictionInfo",
    "WriteBuffer", "PendingWrite",
    "MemoryModule",
    "Directory", "DirEntry", "DirState",
]
