"""4-entry write buffer with read bypass / forwarding.

Per the paper: writes go into the write buffer and take 1 cycle, unless
the buffer is full, in which case the processor stalls until an entry
frees.  Reads are allowed to bypass queued writes (and, for functional
correctness, forward the value of a queued write to the same word).

The buffer itself is passive FIFO storage; the per-protocol cache
controller owns the retire loop (it pops the head, runs the protocol's
write transaction, and releases the entry when the write has globally
performed far enough for the next one to issue).
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Any, Callable, Deque, List, Optional

_write_ids = itertools.count()


class PendingWrite:
    __slots__ = ("write_id", "addr", "word", "block", "value", "mask")

    def __init__(self, addr: int, word: int, block: int, value: Any,
                 mask: Optional[int] = None) -> None:
        self.write_id = next(_write_ids)
        self.addr = addr
        self.word = word
        self.block = block
        self.value = value
        #: sub-word store mask (None = full word)
        self.mask = mask

    def __repr__(self) -> str:  # pragma: no cover
        return f"<W#{self.write_id} {self.word:#x}={self.value!r}>"


class WriteBuffer:
    """FIFO write buffer for one processor."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("write buffer capacity must be >= 1")
        self.capacity = capacity
        self._fifo: Deque[PendingWrite] = deque()
        #: callbacks waiting for a free slot (stalled processor)
        self._space_waiters: List[Callable[[], None]] = []
        #: callbacks waiting for the buffer to drain completely
        self._empty_waiters: List[Callable[[], None]] = []

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._fifo)

    @property
    def full(self) -> bool:
        return len(self._fifo) >= self.capacity

    @property
    def empty(self) -> bool:
        return not self._fifo

    def enqueue(self, write: PendingWrite) -> None:
        if self.full:
            raise RuntimeError("enqueue on full write buffer")
        self._fifo.append(write)

    def head(self) -> Optional[PendingWrite]:
        return self._fifo[0] if self._fifo else None

    def pop(self) -> PendingWrite:
        """Retire the head entry and wake space/empty waiters."""
        write = self._fifo.popleft()
        if self._space_waiters:
            waiters, self._space_waiters = self._space_waiters, []
            for cb in waiters:
                cb()
        if not self._fifo and self._empty_waiters:
            waiters, self._empty_waiters = self._empty_waiters, []
            for cb in waiters:
                cb()
        return write

    # ------------------------------------------------------------------
    # read forwarding
    # ------------------------------------------------------------------

    def forward(self, word: int) -> Optional[PendingWrite]:
        """Most recent queued write to ``word`` (reads bypass + forward)."""
        for write in reversed(self._fifo):
            if write.word == word:
                return write
        return None

    def writes_to(self, word: int) -> List[PendingWrite]:
        """All queued writes to ``word``, oldest first (for composing
        sub-word stores)."""
        return [w for w in self._fifo if w.word == word]

    def pending_blocks(self) -> List[int]:
        return [w.block for w in self._fifo]

    # ------------------------------------------------------------------
    # snapshot / restore (PendingWrite entries are immutable after
    # enqueue, so the snapshot shares them by reference)
    # ------------------------------------------------------------------

    def snapshot_state(self):
        return (tuple(self._fifo), tuple(self._space_waiters),
                tuple(self._empty_waiters))

    def restore_state(self, snap) -> None:
        fifo, space, empty = snap
        self._fifo = deque(fifo)
        self._space_waiters = list(space)
        self._empty_waiters = list(empty)

    # ------------------------------------------------------------------
    # stall hooks
    # ------------------------------------------------------------------

    def on_space(self, callback: Callable[[], None]) -> None:
        self._space_waiters.append(callback)

    def on_empty(self, callback: Callable[[], None]) -> None:
        if self.empty:
            callback()
        else:
            self._empty_waiters.append(callback)
