"""Full-map directory over flat int words.

One directory entry per shared block, kept at the block's home node.
The same entry structure serves all three protocols:

* WI uses ``UNOWNED`` / ``SHARED`` / ``DIRTY`` with a full sharer bitmap
  (bit *n* set = node *n* holds a copy) or a single owner;
* PU/CU use ``SHARED`` with the sharer bitmap being the nodes that
  receive updates, plus ``DIRTY`` for the retain-private optimization
  (the "owner" holds the only up-to-date copy and suppresses
  write-throughs).

An entry's hot state is three plain ints -- ``dstate`` (index into
:data:`DIR_STATES`), ``sharer_mask`` and ``owner`` -- so protocol code
manipulates it with integer bit ops.  The ``state`` and ``sharers``
properties keep the enum/set views for observers and tests; note that
``sharers`` materializes a *fresh* set per access, so mutate via
``sharer_mask`` (or assign a whole set), never via ``sharers.add()``.

Transactions are serialized per block at the home: while an entry is
*busy* with an in-flight transaction, subsequent requests queue and are
serviced in arrival order.  Each transaction gets a sequence number that
data replies and invalidations carry, so caches can discard stale
invalidations that race with newer fills.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Any, Callable, Deque, Dict, Optional, Set, Tuple


class DirState(enum.Enum):
    UNOWNED = "U"
    SHARED = "S"
    DIRTY = "D"


#: dense enum view indexed by the per-entry ``dstate`` ints below
DIR_STATES = (DirState.UNOWNED, DirState.SHARED, DirState.DIRTY)

#: plain-int directory state codes (UNOWNED must stay 0)
DIR_UNOWNED = 0
DIR_SHARED = 1
DIR_DIRTY = 2

for _code, _state in enumerate(DIR_STATES):
    _state.code = _code
del _code, _state


def _dir_code(state) -> int:
    """Accept either a :class:`DirState` member or its int code."""
    return state if type(state) is int else state.code


#: sharer-bitmask -> ascending node tuple, memoized (pure function of
#: the mask, so safe to share across machines)
_MASK_NODES: Dict[int, Tuple[int, ...]] = {0: ()}


def mask_nodes(mask: int) -> Tuple[int, ...]:
    """The nodes set in ``mask``, ascending (the deterministic
    fan-out order invalidations and update propagations use)."""
    nodes = _MASK_NODES.get(mask)
    if nodes is None:
        out = []
        m, n = mask, 0
        while m:
            if m & 1:
                out.append(n)
            m >>= 1
            n += 1
        nodes = _MASK_NODES[mask] = tuple(out)
    return nodes


class DirEntry:
    __slots__ = ("block", "dstate", "sharer_mask", "owner", "busy",
                 "queue", "seq", "early_wb_mask")

    def __init__(self, block: int) -> None:
        self.block = block
        #: plain-int state (index into DIR_STATES)
        self.dstate = DIR_UNOWNED
        #: sharer bitmap: bit n set = node n holds a copy
        self.sharer_mask = 0
        self.owner: int = -1
        self.busy = False
        #: queued (callback, args) transactions awaiting the entry
        self.queue: Deque[Tuple[Callable, tuple]] = deque()
        self.seq = 0
        #: nodes whose WRITEBACK arrived mid-transaction, before the
        #: DIRTY_TRANSFER recording them as owner: the transfer must
        #: not install ownership the writer has already given up
        self.early_wb_mask = 0

    @property
    def state(self) -> DirState:
        return DIR_STATES[self.dstate]

    @state.setter
    def state(self, value) -> None:
        self.dstate = _dir_code(value)

    @property
    def sharers(self) -> Set[int]:
        """Set view of the sharer bitmap.  A fresh set per access:
        read-only for observers; writers use ``sharer_mask``."""
        return set(mask_nodes(self.sharer_mask))

    @sharers.setter
    def sharers(self, nodes) -> None:
        mask = 0
        for n in nodes:
            mask |= 1 << n
        self.sharer_mask = mask

    def next_seq(self) -> int:
        self.seq += 1
        return self.seq

    def __repr__(self) -> str:  # pragma: no cover
        who = (f"owner={self.owner}" if self.dstate == DIR_DIRTY
               else f"sharers={sorted(self.sharers)}")
        return (f"<Dir blk={self.block} {self.state.value} {who}"
                f"{' BUSY' if self.busy else ''}>")


class Directory:
    """Directory for the blocks homed at one node."""

    def __init__(self, node: int) -> None:
        self.node = node
        self._entries: Dict[int, DirEntry] = {}

    def entry(self, block: int) -> DirEntry:
        ent = self._entries.get(block)
        if ent is None:
            ent = DirEntry(block)
            self._entries[block] = ent
        return ent

    def peek(self, block: int) -> Optional[DirEntry]:
        return self._entries.get(block)

    def entries(self) -> Dict[int, DirEntry]:
        return self._entries

    # ------------------------------------------------------------------
    # per-block transaction serialization
    # ------------------------------------------------------------------

    def acquire(self, block: int, fn: Callable, *args: Any) -> None:
        """Run ``fn(*args)`` when the entry is free, marking it busy.
        The transaction must call :meth:`release` when done."""
        ent = self.entry(block)
        if ent.busy:
            ent.queue.append((fn, args))
        else:
            ent.busy = True
            fn(*args)

    def release(self, block: int) -> None:
        """Finish the in-flight transaction; starts the next queued one."""
        ent = self.entry(block)
        if not ent.busy:
            raise RuntimeError(f"release of non-busy entry for blk {block}")
        if ent.queue:
            fn, args = ent.queue.popleft()
            fn(*args)  # entry stays busy for the next transaction
        else:
            ent.busy = False

    # ------------------------------------------------------------------
    # snapshot / restore (entry identity preserved: closures captured
    # before a snapshot keep pointing at live entries after a restore)
    # ------------------------------------------------------------------

    def snapshot_state(self):
        return {block: (ent.dstate, ent.sharer_mask, ent.owner,
                        ent.busy, tuple(ent.queue), ent.seq,
                        ent.early_wb_mask)
                for block, ent in self._entries.items()}

    def restore_state(self, snap) -> None:
        entries = self._entries
        for block in [b for b in entries if b not in snap]:
            del entries[block]
        for block, (dstate, mask, owner, busy, queue, seq,
                    early_wb) in snap.items():
            ent = entries.get(block)
            if ent is None:
                ent = entries[block] = DirEntry(block)
            ent.dstate = dstate
            ent.sharer_mask = mask
            ent.owner = owner
            ent.busy = busy
            ent.queue = deque(queue)
            ent.seq = seq
            ent.early_wb_mask = early_wb
