"""Full-map directory.

One directory entry per shared block, kept at the block's home node.
The same entry structure serves all three protocols:

* WI uses ``UNOWNED`` / ``SHARED`` / ``DIRTY`` with a full sharer bitmap
  (here: a set) or a single owner;
* PU/CU use ``SHARED`` with the sharer set being the nodes that receive
  updates, plus ``DIRTY`` for the retain-private optimization (the
  "owner" holds the only up-to-date copy and suppresses write-throughs).

Transactions are serialized per block at the home: while an entry is
*busy* with an in-flight transaction, subsequent requests queue and are
serviced in arrival order.  Each transaction gets a sequence number that
data replies and invalidations carry, so caches can discard stale
invalidations that race with newer fills.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Any, Callable, Deque, Dict, Optional, Set, Tuple


class DirState(enum.Enum):
    UNOWNED = "U"
    SHARED = "S"
    DIRTY = "D"


class DirEntry:
    __slots__ = ("block", "state", "sharers", "owner", "busy", "queue",
                 "seq")

    def __init__(self, block: int) -> None:
        self.block = block
        self.state = DirState.UNOWNED
        self.sharers: Set[int] = set()
        self.owner: int = -1
        self.busy = False
        #: queued (callback, args) transactions awaiting the entry
        self.queue: Deque[Tuple[Callable, tuple]] = deque()
        self.seq = 0

    def next_seq(self) -> int:
        self.seq += 1
        return self.seq

    def __repr__(self) -> str:  # pragma: no cover
        who = (f"owner={self.owner}" if self.state is DirState.DIRTY
               else f"sharers={sorted(self.sharers)}")
        return (f"<Dir blk={self.block} {self.state.value} {who}"
                f"{' BUSY' if self.busy else ''}>")


class Directory:
    """Directory for the blocks homed at one node."""

    def __init__(self, node: int) -> None:
        self.node = node
        self._entries: Dict[int, DirEntry] = {}

    def entry(self, block: int) -> DirEntry:
        ent = self._entries.get(block)
        if ent is None:
            ent = DirEntry(block)
            self._entries[block] = ent
        return ent

    def peek(self, block: int) -> Optional[DirEntry]:
        return self._entries.get(block)

    def entries(self) -> Dict[int, DirEntry]:
        return self._entries

    # ------------------------------------------------------------------
    # per-block transaction serialization
    # ------------------------------------------------------------------

    def acquire(self, block: int, fn: Callable, *args: Any) -> None:
        """Run ``fn(*args)`` when the entry is free, marking it busy.
        The transaction must call :meth:`release` when done."""
        ent = self.entry(block)
        if ent.busy:
            ent.queue.append((fn, args))
        else:
            ent.busy = True
            fn(*args)

    def release(self, block: int) -> None:
        """Finish the in-flight transaction; starts the next queued one."""
        ent = self.entry(block)
        if not ent.busy:
            raise RuntimeError(f"release of non-busy entry for blk {block}")
        if ent.queue:
            fn, args = ent.queue.popleft()
            fn(*args)  # entry stays busy for the next transaction
        else:
            ent.busy = False
