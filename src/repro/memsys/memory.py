"""Home memory module.

Each node owns the memory (and full-map directory) for the blocks homed
at it.  Timing follows the paper: the first word of an access is
available 20 cycles after the request is issued to the module, with
subsequent words at 1 word/cycle; *memory contention is fully modeled*
as FIFO occupancy of the module.

Values are stored at word granularity in a plain dict; uninitialized
memory reads as 0 (matching zero-filled shared segments).
"""

from __future__ import annotations

from typing import Any, Dict

from repro.config import MachineConfig
from repro.engine import Simulator


class MemoryModule:
    """Memory + occupancy timeline for one home node."""

    def __init__(self, sim: Simulator, config: MachineConfig,
                 node: int) -> None:
        self.sim = sim
        self.config = config
        self.node = node
        self._words: Dict[int, Any] = {}
        self._busy_until = 0
        #: total cycles requests waited for the module (contention metric)
        self.wait_cycles = 0
        self.accesses = 0

    # ------------------------------------------------------------------
    # occupancy
    # ------------------------------------------------------------------

    def block_access_cycles(self) -> int:
        """Occupancy of a full-block read or write."""
        cfg = self.config
        return (cfg.mem_first_word_cycles
                + (cfg.words_per_block - 1) * cfg.mem_per_word_cycles)

    def word_access_cycles(self) -> int:
        """Occupancy of a single-word access (updates, atomics)."""
        return self.config.mem_first_word_cycles

    def dir_cycles(self) -> int:
        """Occupancy of a directory-only operation."""
        return self.config.dir_access_cycles

    def reserve(self, duration: int) -> int:
        """Claim the module for ``duration`` cycles; returns the absolute
        completion time (FIFO service)."""
        now = self.sim.now
        start = max(now, self._busy_until)
        self.wait_cycles += start - now
        self.accesses += 1
        self._busy_until = start + duration
        return self._busy_until

    @property
    def busy_until(self) -> int:
        return self._busy_until

    # ------------------------------------------------------------------
    # snapshot / restore
    # ------------------------------------------------------------------

    def snapshot_state(self):
        return (dict(self._words), self._busy_until, self.wait_cycles,
                self.accesses)

    def restore_state(self, snap) -> None:
        words, busy_until, wait_cycles, accesses = snap
        self._words = dict(words)
        self._busy_until = busy_until
        self.wait_cycles = wait_cycles
        self.accesses = accesses

    # ------------------------------------------------------------------
    # data
    # ------------------------------------------------------------------

    def read_word(self, word: int) -> Any:
        return self._words.get(word, 0)

    def write_word(self, word: int, value: Any) -> None:
        self._words[word] = value

    def read_block(self, block: int) -> Dict[int, Any]:
        """Word-address -> value map for all initialized words of a block."""
        cfg = self.config
        base = block * cfg.block_size_bytes
        out: Dict[int, Any] = {}
        for off in range(0, cfg.block_size_bytes, cfg.word_size_bytes):
            w = base + off
            if w in self._words:
                out[w] = self._words[w]
        return out

    def write_block(self, block: int, data: Dict[int, Any]) -> None:
        self._words.update(data)
