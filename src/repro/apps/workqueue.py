"""Lock-protected shared work queue: dynamic load balancing.

A classic self-scheduling loop: a shared index is advanced under a lock
(or with a bare fetch_and_add) and each processor grabs the next chunk
of work.  Items have deterministic but uneven costs, so processors
finish at different times -- the dynamic-scheduling pattern whose lock
is exactly the contended-but-short critical section of section 4.1.

Every item must be executed exactly once; the app tracks execution at
the Python level and verifies completeness and uniqueness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.config import MachineConfig
from repro.isa.ops import Compute, FetchAdd, Read, Write
from repro.runtime import Machine, RunResult
from repro.sync.locks import make_lock


def item_cost(index: int) -> int:
    """Deterministic uneven work per item (cycles)."""
    return 20 + ((index * 2654435761) >> 8) % 120


class WorkQueue:
    """A shared [0, total) index distributed to the processors."""

    def __init__(self, machine: Machine, total_items: int,
                 lock_kind: Optional[str] = "MCS") -> None:
        self.machine = machine
        self.total_items = total_items
        mm = machine.memmap
        self.next_index = mm.alloc_word(0, "wq.next")
        #: executed[i] = node that ran item i (Python-level audit trail)
        self.executed: List[Optional[int]] = [None] * total_items
        #: completion marks in shared memory too, one word per item
        self.done_words = mm.alloc_words(0, total_items, "wq.done")
        self.lock = (make_lock(lock_kind, machine)
                     if lock_kind is not None else None)

    def program(self, node: int):
        while True:
            if self.lock is not None:
                token = yield from self.lock.acquire(node)
                index = yield Read(self.next_index)
                yield Write(self.next_index, index + 1)
                yield from self.lock.release(node, token)
            else:
                # lock-free: a single fetch_and_add claims the item
                index = yield FetchAdd(self.next_index, 1)
            if index >= self.total_items:
                return
            if self.executed[index] is not None:
                raise AssertionError(
                    f"item {index} executed twice "
                    f"(by {self.executed[index]} and {node})")
            self.executed[index] = node
            yield Compute(item_cost(index))
            yield Write(self.done_words[index], node + 1)

    def verify(self) -> None:
        missing = [i for i, who in enumerate(self.executed)
                   if who is None]
        if missing:
            raise AssertionError(f"items never executed: {missing}")


@dataclass
class WorkQueueResult:
    result: RunResult
    total_items: int
    #: items executed per node (load-balance view)
    per_node: List[int]

    @property
    def cycles_per_item(self) -> float:
        return self.result.total_cycles / self.total_items

    @property
    def balance(self) -> float:
        """max/mean items per node (1.0 = perfectly balanced)."""
        mean = sum(self.per_node) / len(self.per_node)
        return max(self.per_node) / mean if mean else 0.0


def run_workqueue(config: MachineConfig, total_items: int = 64,
                  lock_kind: Optional[str] = "MCS",
                  max_events: Optional[int] = None) -> WorkQueueResult:
    """Build, run, and verify a self-scheduling work queue."""
    machine = Machine(config, max_events=max_events)
    app = WorkQueue(machine, total_items, lock_kind)
    machine.spawn_all(lambda node: app.program(node))
    result = machine.run()
    app.verify()
    per_node = [sum(1 for who in app.executed if who == n)
                for n in range(config.num_procs)]
    return WorkQueueResult(result, total_items, per_node)
