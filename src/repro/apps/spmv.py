"""Sparse matrix-vector product: irregular read sharing + reduction.

Each processor owns a band of matrix rows (private data, charged as
compute) and produces its slice of the output vector; the *input*
vector is shared and read irregularly -- every processor touches a
scattered subset of its words, the classic read-mostly sharing pattern.
An iteration ends with a global max-norm reduction (the paper's
construct) and the vector roles swap.

The numerical result is checked against a direct computation
(fixed-point integer arithmetic, exact).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.config import MachineConfig
from repro.isa.ops import Compute, Fence, Read, Write
from repro.runtime import Machine, RunResult
from repro.sync.ideal import IdealBarrier
from repro.sync.reductions import SequentialReduction


def _pattern(row: int, nnz: int, n: int) -> List[Tuple[int, int]]:
    """Deterministic sparse row: ``nnz`` (column, coefficient) pairs."""
    out = []
    for k in range(nnz):
        col = (row * 2654435761 + k * 40503) % n
        coeff = 1 + (row * 31 + k * 7) % 5
        out.append((col, coeff))
    return out


class SpMV:
    """Banded sparse matrix times shared vector."""

    def __init__(self, machine: Machine, rows_per_proc: int = 8,
                 nnz_per_row: int = 4) -> None:
        self.machine = machine
        cfg = machine.config
        self.P = cfg.num_procs
        self.rows_per_proc = rows_per_proc
        self.nnz = nnz_per_row
        self.n = self.P * rows_per_proc
        mm = machine.memmap
        # double-buffered shared vectors, segment p homed at p
        self.vecs: List[List[int]] = []
        for v in range(2):
            addrs: List[int] = []
            for p in range(self.P):
                addrs.extend(mm.alloc_words(p, rows_per_proc,
                                            f"vec{v}.seg{p}"))
            self.vecs.append(addrs)
        self.initial = [1 + (i * 13) % 7 for i in range(self.n)]
        for i, addr in enumerate(self.vecs[0]):
            mm.set_initial(addr, self.initial[i])
        self.barrier = IdealBarrier(machine)
        self.reduction = SequentialReduction(machine, self.barrier,
                                             label="spmv.norm")
        self.rows = {row: _pattern(row, nnz_per_row, self.n)
                     for row in range(self.n)}
        #: max-norms observed per iteration (for verification)
        self.norms: List[int] = []

    def program(self, node: int, iters: int):
        lo = node * self.rows_per_proc
        for it in range(iters):
            src = self.vecs[it % 2]
            dst = self.vecs[1 - it % 2]
            local_max = 0
            for r in range(lo, lo + self.rows_per_proc):
                acc = 0
                for col, coeff in self.rows[r]:
                    x = yield Read(src[col])
                    yield Compute(2)          # multiply-accumulate
                    acc += coeff * x
                acc %= 10_007                 # keep values bounded
                yield Write(dst[r], acc)
                local_max = max(local_max, acc)
            yield Fence()
            norm = yield from self.reduction.reduce(node, local_max)
            if node == 0:
                self.norms.append(norm)
            yield from self.barrier.wait(node)

    # ------------------------------------------------------------------

    def expected_norms(self, iters: int) -> List[int]:
        vec = list(self.initial)
        norms = []
        for _ in range(iters):
            nxt = [0] * self.n
            for r in range(self.n):
                acc = sum(c * vec[col] for col, c in self.rows[r])
                nxt[r] = acc % 10_007
            vec = nxt
            norms.append(max(vec))
        return norms


@dataclass
class SpMVResult:
    result: RunResult
    iters: int
    norms: List[int]

    @property
    def cycles_per_iter(self) -> float:
        return self.result.total_cycles / self.iters


def run_spmv(config: MachineConfig, iters: int = 4,
             rows_per_proc: int = 8, nnz_per_row: int = 4,
             max_events: Optional[int] = None) -> SpMVResult:
    """Build, run, and verify an SpMV iteration loop."""
    machine = Machine(config, max_events=max_events)
    app = SpMV(machine, rows_per_proc, nnz_per_row)
    machine.spawn_all(lambda node: app.program(node, iters))
    result = machine.run()
    expected = app.expected_norms(iters)
    # reduction episodes interleave with vector production; verify the
    # norms proc 0 observed... note the reduction's running max never
    # resets, so compare against the running maximum of the exact norms
    running = []
    cur = 0
    for n in expected:
        cur = max(cur, n)
        running.append(cur)
    if app.norms != running:
        raise AssertionError(
            f"SpMV norm mismatch under {config.protocol}: "
            f"{app.norms} != {running}")
    return SpMVResult(result, iters, app.norms)
