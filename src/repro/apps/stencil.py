"""1-D Jacobi stencil: nearest-neighbour sharing + barriers.

Each processor owns a contiguous segment of a 1-D grid; every iteration
it averages each interior cell with its neighbours, reading one *halo*
cell from each neighbouring processor, then crosses a barrier.  The
sharing pattern -- stable producer/consumer pairs at segment boundaries
-- is the classic case where update-based protocols shine: after the
first iteration each halo word has exactly one remote reader whose
cached copy is refreshed in place.

Values are scaled integers (the simulator's words are integers); the
result is checked against a pure-Python oracle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.config import MachineConfig
from repro.isa.ops import Compute, Fence, Read, Write
from repro.runtime import Machine, RunResult
from repro.sync.barriers import make_barrier

#: fixed-point scale for cell values
SCALE = 1 << 10


def _oracle(initial: List[int], iters: int) -> List[int]:
    """The same Jacobi sweep, computed directly."""
    cur = list(initial)
    n = len(cur)
    for _ in range(iters):
        nxt = list(cur)
        for i in range(1, n - 1):
            nxt[i] = (cur[i - 1] + cur[i] + cur[i + 1]) // 3
        cur = nxt
    return cur


class JacobiStencil:
    """Shared-grid Jacobi solver for one machine."""

    def __init__(self, machine: Machine, cells_per_proc: int = 8,
                 barrier_kind: str = "db") -> None:
        self.machine = machine
        cfg = machine.config
        self.P = cfg.num_procs
        self.cells_per_proc = cells_per_proc
        self.n = self.P * cells_per_proc
        # two grids (Jacobi needs double buffering); each processor's
        # segment is homed at that processor
        mm = machine.memmap
        self.grids = []
        for g in range(2):
            addrs: List[int] = []
            for p in range(self.P):
                addrs.extend(mm.alloc_words(p, cells_per_proc,
                                            f"grid{g}.seg{p}"))
            self.grids.append(addrs)
        self.barrier = make_barrier(barrier_kind, machine)
        self.initial = [((i * 37) % 101) * SCALE for i in range(self.n)]
        for g in range(2):
            for i, addr in enumerate(self.grids[g]):
                mm.set_initial(addr, self.initial[i])

    def program(self, node: int, iters: int):
        """The thread program for ``node``."""
        lo = node * self.cells_per_proc
        hi = lo + self.cells_per_proc
        for it in range(iters):
            src = self.grids[it % 2]
            dst = self.grids[1 - it % 2]
            prev: Optional[int] = None
            # read the left halo once; then slide a 3-cell window
            if lo > 0:
                prev = yield Read(src[lo - 1])
            for i in range(lo, hi):
                if i == 0 or i == self.n - 1:
                    cur = yield Read(src[i])
                    yield Write(dst[i], cur)      # fixed boundary
                    prev = cur
                    continue
                cur = yield Read(src[i])
                nxt = yield Read(src[i + 1])
                yield Compute(3)                  # add/add/div
                yield Write(dst[i], (prev + cur + nxt) // 3)
                prev = cur
            yield Fence()
            yield from self.barrier.wait(node)

    def result_grid(self, iters: int) -> List[int]:
        """Read the final grid out of the simulated memory system."""
        grid = self.grids[iters % 2]
        cfg = self.machine.config
        out = []
        for addr in grid:
            word = cfg.word_of(addr)
            block = cfg.block_of(addr)
            value = None
            # a dirty cached copy wins over memory
            from repro.memsys.cache import CacheState
            for ctrl in self.machine.controllers:
                line = ctrl.cache.lookup(block)
                if line is not None and line.state in (
                        CacheState.MODIFIED, CacheState.RETAINED):
                    value = line.data.get(word, 0)
            if value is None:
                home = self.machine.memmap.home_of(addr)
                value = self.machine.controllers[home].mem.read_word(word)
            out.append(value)
        return out

    def expected_grid(self, iters: int) -> List[int]:
        return _oracle(self.initial, iters)


@dataclass
class JacobiResult:
    result: RunResult
    verified: bool
    iters: int

    @property
    def cycles_per_iter(self) -> float:
        return self.result.total_cycles / self.iters


def run_jacobi(config: MachineConfig, iters: int = 10,
               cells_per_proc: int = 8, barrier_kind: str = "db",
               max_events: Optional[int] = None) -> JacobiResult:
    """Build, run, and verify a Jacobi solve."""
    machine = Machine(config, max_events=max_events)
    app = JacobiStencil(machine, cells_per_proc, barrier_kind)
    machine.spawn_all(lambda node: app.program(node, iters))
    result = machine.run()
    got = app.result_grid(iters)
    expected = app.expected_grid(iters)
    if got != expected:
        raise AssertionError(
            f"Jacobi mismatch under {config.protocol}: "
            f"{got[:8]} != {expected[:8]} ...")
    return JacobiResult(result, True, iters)
