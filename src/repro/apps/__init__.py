"""Application kernels running on the simulated multiprocessor.

The paper studies constructs in isolation with synthetic drivers; these
kernels exercise the same constructs inside small but complete parallel
programs (the kind its introduction motivates: Splash-2-style codes),
with self-checking results.  They double as end-to-end integration
tests of the public API and as realistic inputs for protocol
comparisons.
"""

from repro.apps.stencil import JacobiStencil, run_jacobi
from repro.apps.histogram import Histogram, run_histogram
from repro.apps.workqueue import WorkQueue, run_workqueue
from repro.apps.spmv import SpMV, run_spmv

__all__ = [
    "JacobiStencil", "run_jacobi",
    "Histogram", "run_histogram",
    "WorkQueue", "run_workqueue",
    "SpMV", "run_spmv",
]
