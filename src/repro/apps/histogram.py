"""Parallel histogram: contended fetch_and_add on shared bins.

Each processor classifies a private stream of items into a small set of
shared bins using fetch_and_add -- the atomic-heavy sharing pattern of
section 3.1's primitives, with contention controlled by the number of
bins.  The final counts are checked against a direct tally.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.config import MachineConfig
from repro.isa.ops import Compute, FetchAdd
from repro.runtime import Machine, RunResult


def _item(node: int, i: int) -> int:
    """Deterministic pseudo-random item stream per processor."""
    return ((node * 2654435761 + i * 40503) >> 5) & 0xFFFF


class Histogram:
    """Shared histogram bins for one machine."""

    def __init__(self, machine: Machine, num_bins: int = 8) -> None:
        self.machine = machine
        self.num_bins = num_bins
        P = machine.config.num_procs
        # bins spread across homes (interleaved, each in its own block)
        self.bins: List[int] = [
            machine.memmap.alloc_word(b % P, f"bin{b}")
            for b in range(num_bins)
        ]

    def program(self, node: int, items: int, classify_cycles: int = 8):
        for i in range(items):
            value = _item(node, i)
            yield Compute(classify_cycles)
            bin_idx = value % self.num_bins
            yield FetchAdd(self.bins[bin_idx], 1)

    def counts(self) -> List[int]:
        cfg = self.machine.config
        out = []
        from repro.memsys.cache import CacheState
        for addr in self.bins:
            word = cfg.word_of(addr)
            block = cfg.block_of(addr)
            value = None
            for ctrl in self.machine.controllers:
                line = ctrl.cache.lookup(block)
                if line is not None and line.state in (
                        CacheState.MODIFIED, CacheState.RETAINED):
                    value = line.data.get(word, 0)
            if value is None:
                home = self.machine.memmap.home_of(addr)
                value = self.machine.controllers[home].mem.read_word(word)
            out.append(value)
        return out

    def expected(self, items: int) -> List[int]:
        P = self.machine.config.num_procs
        tally = [0] * self.num_bins
        for node in range(P):
            for i in range(items):
                tally[_item(node, i) % self.num_bins] += 1
        return tally


@dataclass
class HistogramResult:
    result: RunResult
    counts: List[int]
    items_per_proc: int

    @property
    def cycles_per_item(self) -> float:
        P = len(self.result.proc_done_times)
        return self.result.total_cycles / (self.items_per_proc or 1)


def run_histogram(config: MachineConfig, items_per_proc: int = 32,
                  num_bins: int = 8,
                  max_events: Optional[int] = None) -> HistogramResult:
    """Build, run, and verify a parallel histogram."""
    machine = Machine(config, max_events=max_events)
    app = Histogram(machine, num_bins)
    machine.spawn_all(lambda node: app.program(node, items_per_proc))
    result = machine.run()
    got = app.counts()
    expected = app.expected(items_per_proc)
    if got != expected:
        raise AssertionError(
            f"histogram mismatch under {config.protocol}: "
            f"{got} != {expected}")
    return HistogramResult(result, got, items_per_proc)
