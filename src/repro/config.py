"""Machine and protocol configuration.

All architectural parameters of the simulated multiprocessor live here.
Defaults reproduce the machine described in section 3.1 of the paper:
a 32-node DASH-like directly-connected multiprocessor with 64-KB
direct-mapped caches, 64-byte blocks, 4-entry write buffers, block-level
memory interleaving, and a bi-directional wormhole-routed mesh.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field, replace
from typing import Dict, Tuple


class Protocol(enum.Enum):
    """Coherence protocol selector.

    WI -- DASH-style write invalidate with release consistency.
    PU -- pure update: write-through to home, home propagates updates to
          sharers, sharers ack to the writer, writer stalls for acks only
          at release points.  Includes the "retain" optimization for
          effectively-private blocks.
    CU -- competitive update: PU plus per-cached-block counters; a node
          self-invalidates a block after ``update_threshold`` consecutive
          un-referenced updates and asks the home to stop sending them.
    HYBRID -- per-block protocol selection (the FLASH/Typhoon scenario
          that motivates the paper): each shared allocation is tagged
          with the protocol that manages its blocks, and the machine
          runs all of them side by side.
    MESI -- write invalidate with a clean-exclusive state: a read miss
          on an unowned block is granted E and upgrades to M silently
          on the first store.  Authored as a stable-state spec only;
          its transient states are synthesized
          (:mod:`repro.protospec.synth`).
    """

    WI = "wi"
    PU = "pu"
    CU = "cu"
    HYBRID = "hybrid"
    MESI = "mesi"

    @property
    def is_update_based(self) -> bool:
        return self in (Protocol.PU, Protocol.CU)

    @property
    def short(self) -> str:
        """One-letter label used in the paper's bar charts (i / u / c)."""
        return {"wi": "i", "pu": "u", "cu": "c", "hybrid": "h",
                "mesi": "e"}[self.value]

    @classmethod
    def parse(cls, text: str) -> "Protocol":
        t = text.strip().lower()
        aliases = {
            "i": cls.WI, "wi": cls.WI, "inv": cls.WI, "invalidate": cls.WI,
            "u": cls.PU, "pu": cls.PU, "update": cls.PU, "pure-update": cls.PU,
            "c": cls.CU, "cu": cls.CU, "competitive": cls.CU,
            "competitive-update": cls.CU,
            "h": cls.HYBRID, "hy": cls.HYBRID, "hybrid": cls.HYBRID,
            "e": cls.MESI, "mesi": cls.MESI,
        }
        try:
            return aliases[t]
        except KeyError:
            raise ValueError(f"unknown protocol {text!r}") from None


#: Mesh shapes used for each machine size (paper simulates up to 32 nodes;
#: shapes follow the usual convention of keeping the mesh near-square).
MESH_SHAPES: Dict[int, Tuple[int, int]] = {
    1: (1, 1),
    2: (2, 1),
    4: (2, 2),
    8: (4, 2),
    16: (4, 4),
    32: (8, 4),
    64: (8, 8),
}


def mesh_shape(num_nodes: int) -> Tuple[int, int]:
    """Return the (width, height) of the mesh for ``num_nodes`` nodes.

    Sizes from :data:`MESH_SHAPES` are used verbatim; other sizes get the
    most square factorization available.
    """
    if num_nodes in MESH_SHAPES:
        return MESH_SHAPES[num_nodes]
    if num_nodes <= 0:
        raise ValueError("num_nodes must be positive")
    best = (num_nodes, 1)
    for h in range(1, int(math.isqrt(num_nodes)) + 1):
        if num_nodes % h == 0:
            best = (num_nodes // h, h)
    return best


@dataclass(frozen=True)
class MachineConfig:
    """Architectural parameters of the simulated machine.

    The defaults are the paper's (section 3.1).  All times are in
    processor cycles; the network clock equals the processor clock.
    """

    num_procs: int = 32
    protocol: Protocol = Protocol.WI

    # --- cache ---------------------------------------------------------
    cache_size_bytes: int = 64 * 1024
    block_size_bytes: int = 64
    word_size_bytes: int = 4
    #: 1 = direct-mapped (the paper's machine); higher values add LRU
    #: set-associativity (ablation knob)
    cache_associativity: int = 1

    # --- write buffer --------------------------------------------------
    write_buffer_entries: int = 4

    # --- memory --------------------------------------------------------
    #: cycles from request arrival at the home until the first word is
    #: available.
    mem_first_word_cycles: int = 20
    #: additional cycles per subsequent word of a block transfer.
    mem_per_word_cycles: int = 1
    #: occupancy of the memory module for a directory-only operation
    #: (state lookup / update without a data access).
    dir_access_cycles: int = 4
    #: cycles the home's directory controller spends per sharer when
    #: iterating the full-map vector to issue an invalidation or update
    #: propagation (DASH issued invalidations at a similar rate).
    prop_issue_cycles: int = 4

    # --- network -------------------------------------------------------
    #: per-switch delay applied to the header of each message.
    switch_delay_cycles: int = 2
    #: datapath width in bytes (16 bits in the paper).
    flit_bytes: int = 2
    #: size of a control (non-data) message in bytes.
    ctrl_msg_bytes: int = 8
    #: header overhead added to data-carrying messages, in bytes.
    header_bytes: int = 8

    # --- update-based protocols ----------------------------------------
    #: competitive-update self-invalidation threshold
    update_threshold: int = 4
    #: PU optimization 1: a block cached only by its writer stops being
    #: written through (the home grants "retain" and the writer keeps
    #: future updates local until a recall)
    retain_private: bool = True
    #: protocol for untagged allocations on a HYBRID machine
    hybrid_default: Protocol = Protocol.WI
    #: PU optimization 2: flush the forking processor's cache when a
    #: parallel thread is created, eliminating useless updates of data
    #: written by the parent but not needed by the child
    fork_flush: bool = True
    #: consistency-model ablation: when True, every write stalls the
    #: processor until it has globally performed (sequential
    #: consistency) instead of retiring through the write buffer under
    #: release consistency as in the paper
    sequential_consistency: bool = False

    # --- checkers (src/repro/checkers) ---------------------------------
    #: run the coherence sanitizer (SWMR, directory/cache agreement,
    #: golden-value reads, fence/release discipline) during the run
    enable_sanitizer: bool = False
    #: run the happens-before data-race detector during the run
    enable_race_detector: bool = False
    #: raise :class:`repro.checkers.CheckerError` at end of run if any
    #: enabled checker reported violations (otherwise the report is
    #: left on ``machine.checker_report`` for inspection)
    checkers_strict: bool = True

    # --- misc ----------------------------------------------------------
    #: latency of a purely node-local request (cache controller to the
    #: local home, no network traversal).
    local_hop_cycles: int = 2
    #: adversarial-timing injection: each remote message's propagation
    #: is stretched by a deterministic pseudo-random 0..N cycles (seeded
    #: by ``network_jitter_seed``).  Per-destination FIFO delivery is
    #: preserved (it is a property of the receiving NIC), so protocol
    #: correctness must hold for every seed -- the race-hunting knob
    #: used by the property tests.
    network_jitter_cycles: int = 0
    network_jitter_seed: int = 0x5EED
    #: message-pool debug mode: released messages have every payload
    #: field poisoned so a use-after-release raises at first touch
    #: (costs the recycling win; see repro.network.messages)
    pool_debug: bool = False

    def __post_init__(self) -> None:
        if self.num_procs < 1:
            raise ValueError("num_procs must be >= 1")
        if self.hybrid_default is Protocol.HYBRID:
            raise ValueError("hybrid_default must be a concrete protocol")
        if self.block_size_bytes % self.word_size_bytes:
            raise ValueError("block size must be a multiple of word size")
        if self.cache_size_bytes % self.block_size_bytes:
            raise ValueError("cache size must be a multiple of block size")
        lines = self.cache_size_bytes // self.block_size_bytes
        if self.cache_associativity < 1 or lines % self.cache_associativity:
            raise ValueError("associativity must divide the line count")
        if self.write_buffer_entries < 1:
            raise ValueError("write buffer needs at least one entry")
        if self.update_threshold < 1:
            raise ValueError("update threshold must be >= 1")
        # precomputed shift/mask for the power-of-two sizes (the only
        # sizes the paper uses); block_of / word_of are on the
        # per-access hot path, where a shift beats a division.  The
        # frozen dataclass forbids normal assignment, and these are not
        # fields, so they stay out of equality / replace / asdict.
        bs, ws = self.block_size_bytes, self.word_size_bytes
        object.__setattr__(self, "_block_shift",
                           bs.bit_length() - 1 if bs & (bs - 1) == 0
                           else None)
        object.__setattr__(self, "_word_mask",
                           ~(ws - 1) if ws & (ws - 1) == 0 else None)

    # -- derived quantities ---------------------------------------------

    @property
    def words_per_block(self) -> int:
        return self.block_size_bytes // self.word_size_bytes

    @property
    def num_cache_lines(self) -> int:
        return self.cache_size_bytes // self.block_size_bytes

    @property
    def mesh(self) -> Tuple[int, int]:
        return mesh_shape(self.num_procs)

    @property
    def data_msg_bytes(self) -> int:
        """Size of a whole-block data message (header + block)."""
        return self.header_bytes + self.block_size_bytes

    @property
    def word_msg_bytes(self) -> int:
        """Size of a single-word update/atomic message (header + word)."""
        return self.header_bytes + self.word_size_bytes

    def block_of(self, addr: int) -> int:
        shift = self._block_shift
        if shift is not None:
            return addr >> shift
        return addr // self.block_size_bytes

    def word_of(self, addr: int) -> int:
        """Word-aligned address of ``addr`` (the classification unit)."""
        mask = self._word_mask
        if mask is not None:
            return addr & mask
        return (addr // self.word_size_bytes) * self.word_size_bytes

    def block_base(self, addr: int) -> int:
        shift = self._block_shift
        if shift is not None:
            return (addr >> shift) << shift
        return (addr // self.block_size_bytes) * self.block_size_bytes

    def home_of_block(self, block: int) -> int:
        """Home node of a block under block-level interleaving.

        Explicit placement (see :mod:`repro.runtime.memory_map`) encodes
        the home directly in the address's block number, so interleaving
        simply takes the block number modulo the machine size.
        """
        return block % self.num_procs

    def with_protocol(self, protocol: Protocol) -> "MachineConfig":
        return replace(self, protocol=protocol)

    def with_procs(self, num_procs: int) -> "MachineConfig":
        return replace(self, num_procs=num_procs)


#: Machine sizes swept in the paper's figures 8, 11 and 14.
PAPER_MACHINE_SIZES = (1, 2, 4, 8, 16, 32)

#: All protocols, in the paper's presentation order.
ALL_PROTOCOLS = (Protocol.WI, Protocol.PU, Protocol.CU)


@dataclass(frozen=True)
class ExperimentScale:
    """Iteration-count scaling for the synthetic workloads.

    The paper's synthetic programs execute 32000 total lock acquisitions,
    5000 barrier episodes and 5000 reductions.  Latency metrics are
    per-iteration averages, so uniformly scaling the counts preserves the
    reported series; the default benchmark scale keeps pure-Python runs
    tractable.
    """

    lock_total_acquires: int = 32000
    barrier_episodes: int = 5000
    reduction_iters: int = 5000

    @classmethod
    def paper(cls) -> "ExperimentScale":
        return cls()

    @classmethod
    def scaled(cls, factor: float) -> "ExperimentScale":
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        base = cls()
        return cls(
            lock_total_acquires=max(1, int(base.lock_total_acquires * factor)),
            barrier_episodes=max(1, int(base.barrier_episodes * factor)),
            reduction_iters=max(1, int(base.reduction_iters * factor)),
        )

    @classmethod
    def quick(cls) -> "ExperimentScale":
        """Tiny scale for tests."""
        return cls(lock_total_acquires=64, barrier_episodes=8,
                   reduction_iters=8)


DEFAULT_BENCH_SCALE = ExperimentScale.scaled(0.02)
