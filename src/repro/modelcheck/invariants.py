"""Per-state protocol invariants, checked between every two events.

These are deliberately *stable-state* invariants: a directory-based
protocol is allowed to be temporarily incoherent while a transaction is
in flight, so every rule that could fire transiently is gated on "the
block has no busy directory entry and no message in flight".  What must
hold in **every** state, transient or not:

* ``swmr``         -- at most one dirty (M/R) copy of a block, ever;
* ``cu-counter``   -- a resident line managed by competitive update
                      never reaches the drop threshold (it must have
                      been dropped by the update that got it there).

What must hold whenever the block is *quiet* (no busy entry, no
in-flight message):

* ``stale-copy``   -- a dirty copy excludes any other cached copy;
* ``dir-agreement``-- a dirty copy is known to the home directory as
                      DIRTY with the right owner.

Deadlock, quiescence, golden-value consistency and the final
directory/cache agreement are checked at end of run by the explorer
(via ``machine.finish()`` / the PR-1 sanitizer / the litmus program's
own final check), not here.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.config import Protocol
from repro.memsys.cache import CacheLine, CacheState
from repro.memsys.directory import DirState

#: states that make a cached copy "dirty" (exclusive ownership).
#: MESI's E counts: the copy is clean but the directory records its
#: holder as owner, and it may go dirty with no further traffic.
DIRTY_STATES = (CacheState.MODIFIED, CacheState.RETAINED,
                CacheState.EXCLUSIVE)


class InvariantViolation(AssertionError):
    """A per-state invariant does not hold.  ``rule`` is the short id
    the explorer reports as ``invariant:<rule>``."""

    def __init__(self, rule: str, detail: str) -> None:
        super().__init__(f"{rule}: {detail}")
        self.rule = rule
        self.detail = detail


def _block_in_flight(machine, block: int) -> bool:
    """Any undelivered network message for ``block``?"""
    deliver = machine.net._deliver
    for (_when, _seq, fn, args) in machine.sim.iter_pending():
        if fn == deliver and args and args[0].block == block:
            return True
    return False


def _cu_managed(machine, block: int) -> bool:
    proto = machine.config.protocol
    if proto is Protocol.CU:
        return True
    if proto is Protocol.HYBRID:
        return machine.memmap.protocol_of_block(block) is Protocol.CU
    return False


def check_state_invariants(machine) -> None:
    """Raise :class:`InvariantViolation` if any per-state rule fails."""
    cfg = machine.config
    ctrls = machine.controllers

    holders: Dict[int, List[Tuple[int, CacheLine]]] = {}
    for ctrl in ctrls:
        for line in ctrl.cache.iter_lines():
            holders.setdefault(line.block, []).append(
                (ctrl.node, line))
            if (_cu_managed(machine, line.block)
                    and line.update_count >= cfg.update_threshold):
                raise InvariantViolation(
                    "cu-counter",
                    f"node {ctrl.node} blk {line.block}: update "
                    f"counter {line.update_count} reached the drop "
                    f"threshold {cfg.update_threshold} while the "
                    f"line is still resident")

    for block, copies in holders.items():
        dirty = [(n, ln) for n, ln in copies
                 if ln.state in DIRTY_STATES]
        if len(dirty) > 1:
            raise InvariantViolation(
                "swmr",
                f"blk {block}: dirty copies at nodes "
                f"{sorted(n for n, _ in dirty)}")
        if not dirty:
            continue
        owner_node = dirty[0][0]
        home = cfg.home_of_block(block)
        ent = ctrls[home].directory.peek(block)
        if (ent is not None and ent.busy) \
                or _block_in_flight(machine, block):
            continue  # a transaction is still resolving this block
        if len(copies) > 1:
            others = sorted(n for n, _ in copies if n != owner_node)
            raise InvariantViolation(
                "stale-copy",
                f"blk {block}: dirty at node {owner_node} while nodes "
                f"{others} still hold copies, with no transaction or "
                f"message in flight")
        if ent is None or ent.state is not DirState.DIRTY \
                or ent.owner != owner_node:
            where = ("no directory entry" if ent is None else
                     f"state={ent.state.value} owner={ent.owner}")
            raise InvariantViolation(
                "dir-agreement",
                f"blk {block}: dirty at node {owner_node} but the home "
                f"directory says {where}")
