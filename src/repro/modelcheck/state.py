"""Canonical machine-state encoding for the model checker.

The explorer deduplicates states by *canonical key*: a string that is
equal for two machine snapshots exactly when they will behave
identically for the rest of the run (up to a declared symmetry of the
litmus program).  The encoding is a tagged tree:

* every embedded integer gets a **semantic tag** -- ``("N", node)``,
  ``("B", block)``, ``("W", word-index)``, ``("A", address)``,
  ``("Q", domain, raw)`` for sequence numbers, or ``("AMB", v)`` when
  the encoder cannot tell (ambiguous values block symmetry mapping but
  never exact dedup);
* unordered containers are wrapped in ``("SORT", ...)`` and re-sorted
  after any permutation;
* pending callbacks (closures, bound methods) are encoded structurally:
  free variables and defaults are classified by *name* through the hint
  tables below, so a closure capturing ``seq=7`` hashes by sequence
  *rank*, not raw value.

Sequence numbers (directory/install seqs, write ids, event seqs) only
matter through their relative order, so after encoding every ``("Q",
domain, raw)`` is rank-compressed within its domain.  Event-queue times
are encoded as deltas from the choice-point time.  The canonical key is
the lexicographic minimum of the encoded tree over the identity and
every declared program symmetry (node relabelling + word relabelling).

Anything the encoder has no rule for raises :class:`Unencodable`; the
explorer then simply skips dedup for that state, which costs time but
never soundness.
"""

from __future__ import annotations

import types
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.memsys.cache import CacheLine
from repro.memsys.directory import DirEntry
from repro.memsys.writebuffer import PendingWrite
from repro.network.messages import Message


class Unencodable(Exception):
    """The state contains an object the encoder has no rule for."""


class _AmbiguousPerm(Exception):
    """A value cannot be remapped under a non-identity permutation."""


# ----------------------------------------------------------------------
# name-hint tables: integers reached through closures / event arguments
# are classified by the variable name that carries them
# ----------------------------------------------------------------------

_NODE_NAMES = frozenset({"s", "src", "dst", "node", "writer",
                         "requester", "owner", "home", "parent"})
_NODELIST_NAMES = frozenset({"invs", "receivers", "holders"})
_SEQ_NAMES = frozenset({"seq", "inv_seq"})
_BLOCK_NAMES = frozenset({"block", "blk"})
_WORD_NAMES = frozenset({"word"})
_ADDR_NAMES = frozenset({"addr"})
_DATA_NAMES = frozenset({"value", "v", "val", "merged", "old", "new",
                         "result", "operand", "init", "delta",
                         "expected", "n", "count", "duration", "cycles",
                         "nacks", "opname", "mask", "retain", "state",
                         "reason", "label"})


class Symmetry:
    """One candidate automorphism of a litmus program.

    ``node_map`` is a bijection over node ids; ``word_map`` a bijection
    over the *addresses* returned by ``alloc_word`` (word-index and
    block maps are derived from it).  Both must cover everything that
    can appear in a reachable state; an unmapped id aborts the
    permutation (soundly) via :class:`_AmbiguousPerm`.
    """

    def __init__(self, config, node_map: Dict[int, int],
                 word_map: Dict[int, int]) -> None:
        self.node_map = dict(node_map)
        self.addr_map = dict(word_map)
        self.word_map: Dict[int, int] = {}
        self.block_map: Dict[int, int] = {}
        for a, b in word_map.items():
            self.word_map[config.word_of(a)] = config.word_of(b)
            blk_a, blk_b = config.block_of(a), config.block_of(b)
            prev = self.block_map.setdefault(blk_a, blk_b)
            if prev != blk_b:
                raise ValueError(
                    f"word map splits block {blk_a} across "
                    f"{prev} and {blk_b}")

    def node(self, i: int) -> int:
        try:
            return self.node_map[i]
        except KeyError:
            raise _AmbiguousPerm(f"node {i} not in map") from None

    def block(self, b: int) -> int:
        try:
            return self.block_map[b]
        except KeyError:
            raise _AmbiguousPerm(f"block {b} not in map") from None

    def word(self, w: int) -> int:
        try:
            return self.word_map[w]
        except KeyError:
            raise _AmbiguousPerm(f"word {w} not in map") from None

    def addr(self, a: int) -> int:
        try:
            return self.addr_map[a]
        except KeyError:
            raise _AmbiguousPerm(f"addr {a:#x} not in map") from None


# ----------------------------------------------------------------------
# object encoders
# ----------------------------------------------------------------------

def _owner_tag(obj: Any) -> tuple:
    """Identify the owner of a bound method by role (+ node)."""
    from repro.engine.simulator import Simulator
    from repro.memsys.directory import Directory
    from repro.memsys.memory import MemoryModule
    from repro.network.fabric import Network
    from repro.protocols.base import NodeCtrl
    from repro.runtime.machine import Machine
    from repro.runtime.processor import Processor

    if isinstance(obj, NodeCtrl):
        return ("ctrl", ("N", obj.node))
    if isinstance(obj, Processor):
        return ("proc", ("N", obj.node))
    if isinstance(obj, MemoryModule):
        return ("mem", ("N", obj.node))
    if isinstance(obj, Directory):
        return ("dir", ("N", obj.node))
    if isinstance(obj, Network):
        return ("net",)
    if isinstance(obj, Simulator):
        return ("sim",)
    if isinstance(obj, Machine):
        return ("machine",)
    san = type(obj).__name__
    if san in ("CoherenceSanitizer", "RaceDetector"):
        return (san,)
    raise Unencodable(f"bound method on {type(obj).__name__}")


def _enc_cb(fn: Any) -> Any:
    """Encode a pending callback structurally."""
    if fn is None:
        return None
    if isinstance(fn, types.MethodType):
        return ("BM", _owner_tag(fn.__self__), fn.__func__.__qualname__)
    if isinstance(fn, types.FunctionType):
        code = fn.__code__
        cells: tuple = ()
        if fn.__closure__:
            cells = tuple(
                (name, _enc_hint(cell.cell_contents, name))
                for name, cell in zip(code.co_freevars, fn.__closure__))
        defaults: tuple = ()
        if fn.__defaults__:
            pos = code.co_varnames[:code.co_argcount]
            dnames = pos[code.co_argcount - len(fn.__defaults__):]
            defaults = tuple((name, _enc_hint(v, name))
                             for name, v in zip(dnames, fn.__defaults__))
        return ("FN", fn.__qualname__, defaults, cells)
    raise Unencodable(f"callable {fn!r}")


def _enc_hint(value: Any, name: Optional[str] = None) -> Any:
    """Encode a value reached through a named slot (closure free
    variable, default, or event argument)."""
    if value is None or value is True or value is False:
        return value
    if isinstance(value, (str, float)):
        return value
    if isinstance(value, int):
        if name in _NODE_NAMES:
            return ("N", value) if value >= 0 else value
        if name in _SEQ_NAMES:
            return ("Q", "dir", value)
        if name in _BLOCK_NAMES:
            return ("B", value)
        if name in _WORD_NAMES:
            return ("W", value)
        if name in _ADDR_NAMES:
            return ("A", value)
        if name == "write_id":
            return ("Q", "wid", value)
        if name in _DATA_NAMES:
            return value
        return ("AMB", value)
    if isinstance(value, Message):
        return _enc_msg(value)
    if isinstance(value, PendingWrite):
        return _enc_pw(value)
    if isinstance(value, CacheLine):
        return ("LINEREF", ("B", value.block))
    if isinstance(value, DirEntry):
        return ("ENTREF", ("B", value.block))
    from repro.protocols.base import PendingFill
    if isinstance(value, PendingFill):
        return ("FILLREF", ("B", value.block))
    if isinstance(value, (list, tuple)):
        if name in _NODELIST_NAMES:
            return ("NL",) + tuple(int(v) for v in value)
        inner = name if name in _DATA_NAMES else None
        return tuple(_enc_hint(v, inner) for v in value)
    if isinstance(value, (set, frozenset)):
        if name in _NODELIST_NAMES or name == "sharers":
            return ("NS",) + tuple(sorted(value))
        raise Unencodable(f"set under name {name!r}")
    if isinstance(value, dict):
        if name in ("data", "values"):
            return ("SORT",) + tuple((("W", w), _enc_hint(v))
                                     for w, v in value.items())
        raise Unencodable(f"dict under name {name!r}")
    try:
        # closures frequently capture a machine component ("self",
        # "ctrl", "proc"): its identity-by-role is the whole content
        return ("OBJ", _owner_tag(value))
    except Unencodable:
        pass
    if callable(value):
        return _enc_cb(value)
    raise Unencodable(f"{type(value).__name__} under name {name!r}")


def _enc_worddict(d: Dict[int, Any]) -> tuple:
    return ("SORT",) + tuple((("W", w), _enc_hint(v))
                             for w, v in d.items())


def _enc_msg(m: Message) -> tuple:
    return ("MSG", m.mtype.value,
            ("N", m.src), ("N", m.dst), ("B", m.block),
            ("N", m.requester) if m.requester >= 0 else -1,
            ("W", m.word) if isinstance(m.word, int) else m.word,
            _enc_hint(m.value, "value"),
            _enc_worddict(m.data) if m.data else None,
            m.nacks,
            ("Q", "dir", m.seq) if m.seq >= 0 else None,
            m.op,
            _enc_hint(m.operand, "operand"),
            _enc_hint(m.result, "result"),
            m.retain,
            ("Q", "wid", m.write_id)
            if getattr(m, "write_id", None) is not None else None,
            m.mask)


def _enc_pw(pw: PendingWrite) -> tuple:
    return ("PW", ("Q", "wid", pw.write_id), ("A", pw.addr),
            ("W", pw.word), ("B", pw.block),
            _enc_hint(pw.value, "value"), pw.mask)


def _enc_line(line: CacheLine) -> tuple:
    return ("LINE", ("B", line.block), line.state.value,
            _enc_worddict(line.data),
            ("Q", "dir", line.seq),
            line.update_count,
            _enc_worddict(line.dirty_words))


def _enc_dir_entry(ent: DirEntry) -> tuple:
    owner = ent.owner
    return ("ENT", ("B", ent.block), ent.state.value,
            ("NS",) + tuple(sorted(ent.sharers)),
            ("N", owner) if isinstance(owner, int) and owner >= 0
            else owner,
            ent.busy,
            tuple(( _enc_cb(fn), _enc_args(fn, args))
                  for fn, args in ent.queue),
            ("Q", "dir", ent.seq))


def _enc_fill(pend) -> Any:
    if pend is None:
        return None
    return ("FILL", ("B", pend.block), ("W", pend.word),
            _enc_cb(pend.cb),
            ("Q", "dir", pend.inv_seq)
            if pend.inv_seq is not None else None)


def _enc_atomic(pa: Optional[dict]) -> Any:
    if pa is None:
        return None
    return ("PA",) + tuple(sorted(
        ((k, _enc_hint(v, k)) for k, v in pa.items()),
        key=lambda kv: kv[0]))


def _enc_op(op: Any) -> Any:
    if op is None:
        return None
    parts: List[Any] = ["OP", type(op).__name__]
    for attr, name in (("addr", "addr"), ("value", "value"),
                       ("mask", "mask"), ("cycles", "cycles"),
                       ("opname", "opname"), ("operand", "operand"),
                       ("node", "node")):
        if hasattr(op, attr):
            parts.append((attr, _enc_hint(getattr(op, attr), name)))
    if hasattr(op, "predicate"):
        parts.append(("predicate", _enc_cb(op.predicate)))
    if hasattr(op, "fn"):
        parts.append(("fn", _enc_cb(op.fn)))
    if hasattr(op, "handle"):
        parts.append(("handle", ("proc", ("N", op.handle.node))))
    return tuple(parts)


def _enc_proc(p) -> tuple:
    spin = None
    if p._spin_pred is not None:
        spin = (("A", p._spin_addr), _enc_cb(p._spin_pred))
    return ("PROC", ("N", p.node), p.started, p.done,
            _enc_op(p._current_op) if not p.done else None,
            spin,
            tuple(_enc_cb(cb) for cb in p._done_callbacks))


def _enc_ctrl(c, base: int) -> tuple:
    lines = []
    cache = c.cache
    for s in range(cache.num_sets):
        slots = cache._set_slots(s)
        if len(slots) > 1:
            # within-set LRU order would need its own canonical form;
            # litmus configs keep at most one line per set
            raise Unencodable("multi-line set (LRU order not canonical)")
        for slot in slots:
            lines.append(_enc_line(cache._lines[slot]))
    watchers = ("SORT",) + tuple(
        (("B", b), tuple(_enc_cb(cb) for cb in cbs))
        for b, cbs in c.cache._watchers.items() if cbs)
    return ("CTRL", ("N", c.node),
            ("SORT",) + tuple(lines),
            watchers,
            tuple(_enc_pw(pw) for pw in c.wb._fifo),
            tuple(_enc_cb(cb) for cb in c.wb._space_waiters),
            tuple(_enc_cb(cb) for cb in c.wb._empty_waiters),
            _enc_worddict(c.mem._words),
            max(0, c.mem._busy_until - base),
            ("SORT",) + tuple(_enc_dir_entry(e)
                              for e in c.directory._entries.values()),
            c.outstanding_acks,
            c._retiring,
            tuple(_enc_cb(cb) for cb in c._fence_waiters),
            tuple(_enc_cb(cb) for cb in c._drain_waiters),
            _enc_fill(c._pending_fill),
            _enc_atomic(c._pending_atomic),
            ("SORT",) + tuple(
                (("B", b), _enc_cb(body), _enc_msg(msg))
                for b, (body, msg) in c._txn.items()))


def _enc_args(fn: Any, args: tuple) -> tuple:
    if not args:
        return ()
    code = None
    skip = 0
    if isinstance(fn, types.MethodType):
        code = fn.__func__.__code__
        skip = 1
    elif isinstance(fn, types.FunctionType):
        code = fn.__code__
    names: Tuple[Optional[str], ...] = ()
    if code is not None:
        names = code.co_varnames[skip:skip + len(args)]
    if len(names) < len(args):
        names = tuple(names) + (None,) * (len(args) - len(names))
    return tuple(_enc_hint(a, nm) for a, nm in zip(args, names))


def _enc_events(events: Iterable[tuple], base: int) -> tuple:
    out = []
    for (t, seq, fn, args) in sorted(events, key=lambda e: (e[0], e[1])):
        out.append((t - base, ("Q", "ev", seq),
                    _enc_cb(fn), _enc_args(fn, args)))
    return ("EVQ",) + tuple(out)


def encode_machine(machine, pending_events: List[tuple],
                   histories: Optional[Dict[int, list]] = None) -> tuple:
    """Encode a machine snapshot plus its pending event list as a raw
    tagged tree (sequence numbers still carry raw values)."""
    base = min((e[0] for e in pending_events), default=machine.sim.now)
    ctrls = ("SORT",) + tuple(_enc_ctrl(c, base)
                              for c in machine.controllers)
    procs = ("SORT",) + tuple(_enc_proc(p) for p in machine.processors)
    net = machine.net
    netenc = ("NET",
              ("SORT",) + tuple((("N", i), max(0, t - base))
                                for i, t in enumerate(net._src_free)),
              ("SORT",) + tuple((("N", i), max(0, t - base))
                                for i, t in enumerate(net._dst_free)))
    hist: Any = None
    if histories is not None:
        hist = ("HIST", ("SORT",) + tuple(
            (("N", n), tuple(_enc_hint(v, "value") for v in h))
            for n, h in sorted(histories.items())))
    san = machine.sanitizer
    sanenc: Any = None
    if san is not None:
        sanenc = ("SAN", ("SORT",) + tuple(
            (("W", w), tuple(sorted(vals, key=repr)))
            for w, vals in san._values.items()))
    return ("MACHINE", ctrls, procs, netenc,
            _enc_events(pending_events, base), hist, sanenc)


# ----------------------------------------------------------------------
# rank compression + permutation + canonical form
# ----------------------------------------------------------------------

def _finalize_ranks(tree: Any) -> Any:
    found: Dict[str, set] = {}

    def scan(t: Any) -> None:
        if isinstance(t, tuple):
            if t and t[0] == "Q":
                found.setdefault(t[1], set()).add(t[2])
            else:
                for x in t:
                    scan(x)
    scan(tree)
    ranks = {dom: {raw: i for i, raw in enumerate(sorted(vals))}
             for dom, vals in found.items()}

    def rewrite(t: Any) -> Any:
        if isinstance(t, tuple):
            if t and t[0] == "Q":
                return ("Q", t[1], ranks[t[1]][t[2]])
            return tuple(rewrite(x) for x in t)
        return t
    return rewrite(tree)


def _apply_perm(tree: Any, sym: Optional[Symmetry]) -> Any:
    def rec(t: Any) -> Any:
        if not isinstance(t, tuple) or not t:
            return t
        tag = t[0]
        if tag == "N":
            return ("N", sym.node(t[1])) if sym is not None else t
        if tag == "B":
            return ("B", sym.block(t[1])) if sym is not None else t
        if tag == "W":
            return ("W", sym.word(t[1])) if sym is not None else t
        if tag == "A":
            return ("A", sym.addr(t[1])) if sym is not None else t
        if tag == "NS":
            ids = t[1:] if sym is None else tuple(
                sym.node(i) for i in t[1:])
            return ("NS",) + tuple(sorted(ids))
        if tag == "NL":
            if sym is None:
                return t
            return ("NL",) + tuple(sym.node(i) for i in t[1:])
        if tag == "AMB":
            if sym is not None:
                raise _AmbiguousPerm(repr(t))
            return t
        if tag == "Q":
            return t
        if tag == "SORT":
            return ("SORT",) + tuple(
                sorted((rec(x) for x in t[1:]), key=repr))
        return tuple(rec(x) for x in t)
    return rec(tree)


def canonical_key(machine, pending_events: List[tuple],
                  symmetries: Iterable[Symmetry] = (),
                  histories: Optional[Dict[int, list]] = None
                  ) -> Optional[str]:
    """The canonical fingerprint of a snapshot, or None when some piece
    of state is :class:`Unencodable` (the caller skips dedup then)."""
    try:
        tree = _finalize_ranks(
            encode_machine(machine, pending_events, histories))
        best = repr(_apply_perm(tree, None))
        for sym in symmetries:
            try:
                cand = repr(_apply_perm(tree, sym))
            except _AmbiguousPerm:
                continue
            if cand < best:
                best = cand
        return best
    except Unencodable:
        return None
