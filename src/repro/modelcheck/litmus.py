"""The bundled litmus-program suite.

Each :class:`LitmusProgram` is a tiny concurrent program (2-3 nodes,
1-2 blocks, 1-2 words) with:

* a small machine configuration tuned for tractable exploration
  (shallow memory/network latencies so same-cycle ties -- the model
  checker's choice points -- actually occur);
* a ``build(machine)`` hook that allocates its words, spawns its
  threads, and returns the program's final-state check plus its
  declared symmetries (node/word relabellings under which the program
  is invariant -- used for symmetry reduction);
* in-program assertions (raised straight from the thread generators)
  for properties that per-state invariants cannot see, e.g. "my own
  sub-word byte survived".

Under ``Protocol.HYBRID`` the builders tag their allocations with
explicit per-block protocols (``memmap.use_protocol``), so hybrid runs
genuinely mix WI- and update-managed blocks instead of degenerating to
the ``hybrid_default``.

Spin predicates are module-level functions on purpose: closure-free
callables keep the state encoder's fingerprints exact.
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import Callable, Dict, List, Tuple

from repro.config import MachineConfig, Protocol
from repro.isa.ops import (
    Fence, FetchAdd, FetchStore, Read, SpinUntil, Write,
)
from repro.memsys.cache import CacheState

#: the protocols every litmus program is explored under
MODEL_CHECK_PROTOCOLS = (Protocol.WI, Protocol.PU, Protocol.CU,
                         Protocol.HYBRID, Protocol.MESI)

#: (node_map, word_map) pairs; word maps are keyed by address
SymmetrySpec = Tuple[Dict[int, int], Dict[int, int]]


class Built:
    """What ``build(machine)`` hands back to the explorer."""

    __slots__ = ("final_check", "symmetries")

    def __init__(self, final_check: Callable,
                 symmetries: List[SymmetrySpec]) -> None:
        self.final_check = final_check
        self.symmetries = symmetries


class LitmusProgram:
    def __init__(self, name: str, procs: int, description: str,
                 builder: Callable, config_overrides=None) -> None:
        self.name = name
        self.procs = procs
        self.description = description
        self._builder = builder
        self.config_overrides = dict(config_overrides or {})

    def config(self, protocol: Protocol) -> MachineConfig:
        return litmus_config(protocol, self.procs,
                             **self.config_overrides)

    def build(self, machine) -> Built:
        return self._builder(machine)


def litmus_config(protocol: Protocol, procs: int,
                  **overrides) -> MachineConfig:
    """A deliberately small and shallow machine: 8-byte blocks, 2-line
    caches, single-cycle directory and network hops.  Shallow latencies
    maximize same-cycle ties, which is where the interleavings live."""
    base = dict(
        num_procs=procs,
        protocol=protocol,
        cache_size_bytes=16,
        block_size_bytes=8,
        word_size_bytes=4,
        cache_associativity=1,
        write_buffer_entries=2,
        mem_first_word_cycles=2,
        mem_per_word_cycles=1,
        dir_access_cycles=1,
        prop_issue_cycles=1,
        switch_delay_cycles=1,
        flit_bytes=8,
        ctrl_msg_bytes=8,
        header_bytes=0,
        local_hop_cycles=1,
        update_threshold=2,
        retain_private=True,
        enable_sanitizer=True,
        enable_race_detector=False,
        checkers_strict=True,
        network_jitter_cycles=0,
    )
    base.update(overrides)
    return MachineConfig(**base)


def final_value(machine, addr: int):
    """The final value of ``addr``: a dirty cached copy wins, else the
    home memory module."""
    cfg = machine.config
    word = cfg.word_of(addr)
    block = cfg.block_of(addr)
    for ctrl in machine.controllers:
        line = ctrl.cache.peek(block)
        if line is not None and line.state in (CacheState.MODIFIED,
                                               CacheState.RETAINED):
            return line.data.get(word, 0)
    home = machine.memmap.home_of(addr)
    return machine.controllers[home].mem.read_word(word)


def _eq0(v) -> bool:
    return v == 0


def _eq1(v) -> bool:
    return v == 1


def _tag(machine, protocol: Protocol):
    """Per-block protocol tag, active only under HYBRID."""
    if machine.config.protocol is Protocol.HYBRID:
        return machine.memmap.use_protocol(protocol)
    return nullcontext()


# ----------------------------------------------------------------------
# the programs
# ----------------------------------------------------------------------

def _build_sb(machine) -> Built:
    mm = machine.memmap
    with _tag(machine, Protocol.CU):
        x = mm.alloc_word(0, "x")
        y = mm.alloc_word(1, "y")
    res: Dict[str, int] = {}

    def side(first, second, key):
        def prog(node):
            yield Write(first, 1)
            yield Fence()
            res[key] = yield Read(second)
        return prog

    p0, p1 = side(x, y, "r0"), side(y, x, "r1")
    machine.spawn(0, p0(0), factory=lambda: p0(0))
    machine.spawn(1, p1(1), factory=lambda: p1(1))
    # ``res`` is written by the threads: snapshot/restore must rewind it
    machine.snapshot_containers.append(res)

    def final(m) -> None:
        if res.get("r0") == 0 and res.get("r1") == 0:
            raise AssertionError(
                "store-buffer: both post-fence reads returned 0 "
                "(fences did not order the stores)")
        for addr, name in ((x, "x"), (y, "y")):
            got = final_value(m, addr)
            if got != 1:
                raise AssertionError(
                    f"store-buffer: final {name}={got}, want 1")

    return Built(final, [({0: 1, 1: 0}, {x: y, y: x})])


def _build_mp(machine) -> Built:
    mm = machine.memmap
    with _tag(machine, Protocol.PU):
        data = mm.alloc_word(0, "data")
    with _tag(machine, Protocol.WI):
        flag = mm.alloc_word(0, "flag")

    def producer(node):
        yield Write(data, 42)
        yield Fence()
        yield Write(flag, 1)

    def consumer(node):
        yield SpinUntil(flag, _eq1)
        got = yield Read(data)
        if got != 42:
            raise AssertionError(
                f"mp: consumer {node} saw flag=1 but data={got}")

    machine.spawn(0, producer(0), factory=lambda: producer(0))
    machine.spawn(1, consumer(1), factory=lambda: consumer(1))
    machine.spawn(2, consumer(2), factory=lambda: consumer(2))

    def final(m) -> None:
        if final_value(m, flag) != 1:
            raise AssertionError("mp: final flag != 1")
        if final_value(m, data) != 42:
            raise AssertionError("mp: final data != 42")

    ident = {data: data, flag: flag}
    return Built(final, [({0: 0, 1: 2, 2: 1}, ident)])


def _build_lock(machine) -> Built:
    mm = machine.memmap
    with _tag(machine, Protocol.CU):
        lock = mm.alloc_word(0, "lock")
    with _tag(machine, Protocol.WI):
        count = mm.alloc_word(0, "count")
    mm.mark_sync(lock)
    mm.mark_release(lock, _eq0)

    def contender(node):
        # test-and-test-and-set acquire, unlocked critical section,
        # ordinary-store release
        while True:
            yield SpinUntil(lock, _eq0)
            old = yield FetchStore(lock, 1)
            if old == 0:
                break
        v = yield Read(count)
        yield Write(count, v + 1)
        yield Fence()
        yield Write(lock, 0)
        yield Fence()

    machine.spawn(1, contender(1), factory=lambda: contender(1))
    machine.spawn(2, contender(2), factory=lambda: contender(2))

    def final(m) -> None:
        got = final_value(m, count)
        if got != 2:
            raise AssertionError(
                f"lock: count={got} after 2 critical sections, want 2")
        if final_value(m, lock) != 0:
            raise AssertionError("lock: still held at termination")

    ident = {lock: lock, count: count}
    return Built(final, [({0: 0, 1: 2, 2: 1}, ident)])


def _build_barrier(machine) -> Built:
    mm = machine.memmap
    with _tag(machine, Protocol.WI):
        count = mm.alloc_word(0, "count")
    with _tag(machine, Protocol.PU):
        sense = mm.alloc_word(0, "sense")
    mm.mark_sync(count)
    arrivals = machine.config.num_procs

    def arriver(node):
        old = yield FetchAdd(count, 1)
        if old == arrivals - 1:
            # last arrival flips the sense flag
            yield Fence()
            yield Write(sense, 1)
            yield Fence()
        else:
            yield SpinUntil(sense, _eq1)

    for n in range(arrivals):
        machine.spawn(n, arriver(n), factory=lambda n=n: arriver(n))

    def final(m) -> None:
        got = final_value(m, count)
        if got != arrivals:
            raise AssertionError(
                f"barrier: arrival count={got}, want {arrivals}")
        if final_value(m, sense) != 1:
            raise AssertionError("barrier: sense never flipped")

    ident = {count: count, sense: sense}
    return Built(final, [({0: 0, 1: 2, 2: 1}, ident)])


def _build_evict(machine) -> Built:
    # single-line caches: reading y evicts the dirty copy of x, racing
    # the writeback against the other node's fetch of x
    mm = machine.memmap
    with _tag(machine, Protocol.PU):
        x = mm.alloc_word(0, "x")
    with _tag(machine, Protocol.WI):
        y = mm.alloc_word(1, "y")

    def writer(node):
        yield Write(x, 1)
        yield Fence()
        yield Read(y)
        yield Fence()

    def watcher(node):
        yield SpinUntil(x, _eq1)

    machine.spawn(0, writer(0), factory=lambda: writer(0))
    machine.spawn(1, watcher(1), factory=lambda: watcher(1))

    def final(m) -> None:
        if final_value(m, x) != 1:
            raise AssertionError("evict: write to x lost")
        if final_value(m, y) != 0:
            raise AssertionError("evict: y was never written")

    return Built(final, [])


def _build_subword(machine) -> Built:
    # both nodes byte-write disjoint halves of ONE word; masked merges
    # must preserve the other node's half at every hop
    mm = machine.memmap
    with _tag(machine, Protocol.CU):
        w = mm.alloc_word(0, "w")

    def mixer(v1, v2, mask):
        def prog(node):
            yield Read(w)
            yield Write(w, v1, mask)
            yield Write(w, v2, mask)
            yield Fence()
            got = yield Read(w)
            if got & mask != v2 & mask:
                raise AssertionError(
                    f"subword: node {node} lost its own bits: read "
                    f"{got:#06x}, wants {v2 & mask:#06x} under "
                    f"{mask:#06x}")
        return prog

    m0 = mixer(0x11, 0x22, 0x00FF)
    m1 = mixer(0x1100, 0x2200, 0xFF00)
    machine.spawn(0, m0(0), factory=lambda: m0(0))
    machine.spawn(1, m1(1), factory=lambda: m1(1))

    def final(m) -> None:
        got = final_value(m, w)
        if got != 0x2222:
            raise AssertionError(
                f"subword: final word {got:#06x}, want 0x2222")

    return Built(final, [])


PROGRAMS: Dict[str, LitmusProgram] = {p.name: p for p in (
    LitmusProgram(
        "sb", 2,
        "store buffering: fenced cross-stores, both-zero forbidden",
        _build_sb),
    LitmusProgram(
        "mp", 3,
        "message passing: fenced data+flag publish, two spinning readers",
        _build_mp),
    LitmusProgram(
        "lock", 3,
        "TTAS lock handoff: two contenders increment under the lock",
        _build_lock),
    LitmusProgram(
        "barrier", 3,
        "sense-reversing barrier arrival via fetch-and-add",
        _build_barrier),
    LitmusProgram(
        "evict", 2,
        "eviction race: dirty writeback vs remote fetch, 1-line cache",
        _build_evict, config_overrides={"cache_size_bytes": 8}),
    LitmusProgram(
        "subword", 2,
        "sub-word merge: disjoint byte stores to one word",
        _build_subword),
)}


def get_program(name: str) -> LitmusProgram:
    try:
        return PROGRAMS[name]
    except KeyError:
        raise KeyError(
            f"unknown litmus program {name!r}; "
            f"have {', '.join(sorted(PROGRAMS))}") from None
