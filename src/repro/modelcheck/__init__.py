"""Exhaustive protocol model checking (subsystem S17).

Small litmus programs + controlled same-cycle scheduling + canonical
state hashing = every reachable interleaving of WI / PU / CU / HYBRID
on 2-3 node configurations, with per-state invariants checked between
events and replayable minimized counterexamples on violation.  See
``docs/modelcheck.md``.
"""

from repro.modelcheck.explorer import (
    ExploreResult, ScheduleDivergence, Violation, explore, run_schedule,
)
from repro.modelcheck.invariants import (
    InvariantViolation, check_state_invariants,
)
from repro.modelcheck.litmus import (
    MODEL_CHECK_PROTOCOLS, LitmusProgram, PROGRAMS, final_value,
    get_program, litmus_config,
)
from repro.modelcheck.mutations import MUTATIONS, Mutation, get_mutation
from repro.modelcheck.schedule import (
    SCHEDULE_FORMAT, counterexample_dict, load_schedule, replay,
    replay_file, save_counterexample,
)
from repro.modelcheck.state import Symmetry, Unencodable, canonical_key

__all__ = [
    "ExploreResult",
    "InvariantViolation",
    "LitmusProgram",
    "MODEL_CHECK_PROTOCOLS",
    "MUTATIONS",
    "Mutation",
    "PROGRAMS",
    "SCHEDULE_FORMAT",
    "ScheduleDivergence",
    "Symmetry",
    "Unencodable",
    "Violation",
    "canonical_key",
    "check_state_invariants",
    "counterexample_dict",
    "explore",
    "final_value",
    "get_mutation",
    "get_program",
    "litmus_config",
    "load_schedule",
    "replay",
    "replay_file",
    "run_schedule",
    "save_counterexample",
]
