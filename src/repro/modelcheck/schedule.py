"""Replayable counterexample schedules.

A counterexample is saved as JSON: the litmus program, protocol,
optional mutation, the minimized choice sequence, the violation it
reproduces, and (informationally) the full machine config.  Replaying
rebuilds the identical machine, forces the same same-cycle choices, and
prints a human-readable transition trace -- every event in execution
order, with the chosen index at each choice point -- under the PR-1
sanitizer.  The replay exits 0 exactly when the recorded violation kind
reproduces.
"""

from __future__ import annotations

import json
import types
from typing import Any, Dict, Optional, TextIO

from repro.config import Protocol

SCHEDULE_FORMAT = "repro-modelcheck-schedule-v1"


def counterexample_dict(result) -> Dict[str, Any]:
    """Serialize an :class:`~repro.modelcheck.explorer.ExploreResult`
    that carries a violation."""
    from repro.campaign.spec import config_to_jsonable
    from repro.modelcheck.litmus import get_program

    if result.violation is None:
        raise ValueError("no violation to serialize")
    litmus = get_program(result.program)
    config = litmus.config(Protocol(result.protocol))
    return {
        "format": SCHEDULE_FORMAT,
        "program": result.program,
        "protocol": result.protocol,
        "mutation": result.mutation,
        "choices": list(result.choices or ()),
        "violation": {"kind": result.violation.kind,
                      "detail": result.violation.detail},
        "config": config_to_jsonable(config),
        "stats": {"schedules": result.schedules,
                  "states": result.states,
                  "choice_points": result.choice_points},
    }


def save_counterexample(path: str, result) -> None:
    with open(path, "w") as fh:
        json.dump(counterexample_dict(result), fh, indent=2,
                  sort_keys=True)
        fh.write("\n")


def load_schedule(path: str) -> Dict[str, Any]:
    with open(path) as fh:
        data = json.load(fh)
    if data.get("format") != SCHEDULE_FORMAT:
        raise ValueError(
            f"{path}: not a modelcheck schedule "
            f"(format={data.get('format')!r})")
    return data


# ----------------------------------------------------------------------
# the transition trace
# ----------------------------------------------------------------------

def describe_event(fn, args) -> str:
    """One human-readable line per simulator event."""
    if isinstance(fn, types.MethodType):
        owner = fn.__self__
        name = fn.__func__.__name__
        node = getattr(owner, "node", None)
        if name == "_deliver" and args:
            m = args[0]
            extra = []
            if m.word is not None:
                extra.append(f"word={m.word}")
            if m.value is not None:
                extra.append(f"value={m.value!r}")
            if m.nacks:
                extra.append(f"nacks={m.nacks}")
            if m.seq >= 0:
                extra.append(f"seq={m.seq}")
            tail = (" " + " ".join(extra)) if extra else ""
            return (f"deliver {m.mtype.value:<13} {m.src}->{m.dst} "
                    f"blk={m.block}{tail}")
        target = type(owner).__name__
        if node is not None:
            target = f"{target}[{node}]"
        if name == "_resume":
            return f"{target}.resume(value={args[0]!r})"
        shown = ", ".join(repr(a) for a in args)
        return f"{target}.{name}({shown})"
    name = getattr(fn, "__qualname__", None) or repr(fn)
    return f"{name}()" if not args else f"{name}{args!r}"


def replay(data: Dict[str, Any], out: Optional[TextIO] = None,
           quiet: bool = False) -> int:
    """Re-execute a schedule dict (from :func:`load_schedule`).

    Returns 0 when the recorded violation kind reproduces (or when the
    schedule recorded no violation and the run is clean), 1 otherwise.
    """
    import sys

    from repro.modelcheck.explorer import run_schedule
    from repro.modelcheck.litmus import get_program
    from repro.modelcheck.mutations import get_mutation

    if out is None:
        out = sys.stdout

    def emit(line: str) -> None:
        if not quiet:
            print(line, file=out)

    program = data["program"]
    protocol = Protocol(data["protocol"])
    mutation = data.get("mutation")
    choices = tuple(data["choices"])
    expected = (data.get("violation") or {}).get("kind")

    litmus = get_program(program)
    config = litmus.config(protocol)
    emit(f"replaying {program} under {protocol.value}"
         + (f" with mutation {mutation}" if mutation else "")
         + f": {len(choices)} forced choice(s)")
    if expected:
        emit(f"expected violation: {expected}")
    emit("-" * 64)

    counter = {"n": 0}
    pending_choice = {"line": None}

    def on_choice(pos, n_ready, chosen):
        pending_choice["line"] = (
            f"  [choice {pos}: {n_ready} ready, taking #{chosen}]")

    def on_event(when, fn, args):
        counter["n"] += 1
        if pending_choice["line"]:
            emit(pending_choice["line"])
            pending_choice["line"] = None
        emit(f"t={when:<5} {describe_event(fn, args)}")

    hooks = {} if quiet else {"on_event": on_event,
                              "on_choice": on_choice}
    mut_ctx = get_mutation(mutation).activate() if mutation else None
    try:
        if mut_ctx is not None:
            with mut_ctx:
                _machine, violation = run_schedule(
                    litmus, config, choices, **hooks)
        else:
            _machine, violation = run_schedule(
                litmus, config, choices, **hooks)
    except Exception as exc:  # divergence / setup failure
        emit("-" * 64)
        emit(f"replay failed to execute: {exc}")
        return 1

    emit("-" * 64)
    if violation is None:
        emit("run completed cleanly")
        ok = expected is None
    else:
        emit(f"violation: {violation.kind}")
        emit(f"  {violation.detail}")
        ok = expected is not None and violation.kind == expected
    emit("reproduced the recorded violation" if ok and expected
         else ("clean run as recorded" if ok
               else "did NOT reproduce the recorded outcome"))
    return 0 if ok else 1


def replay_file(path: str, out: Optional[TextIO] = None,
                quiet: bool = False) -> int:
    return replay(load_schedule(path), out=out, quiet=quiet)
