"""Seeded protocol bugs for validating the model checker.

Each mutation is a context manager that monkey-patches one protocol
class method with a subtly broken variant -- the kind of transient-state
bug the exhaustive search is meant to catch.  Every mutation declares
the litmus program and protocol it targets; ``--mutants`` explores
exactly those combinations and demands a counterexample from each.

The patches swap *class* attributes, so they must be active while the
machine is constructed (handler tables bind methods at controller
construction) and stay active for the whole exploration.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict

from repro.config import Protocol


@dataclass(frozen=True)
class Mutation:
    name: str
    description: str
    program: str            # litmus program that exposes it
    protocol: Protocol      # protocol to explore it under
    _ctx: Callable = field(repr=False, compare=False)

    def activate(self):
        return self._ctx()


@contextmanager
def _patched(cls, attr: str, replacement) -> None:
    original = getattr(cls, attr)
    setattr(cls, attr, replacement)
    try:
        yield
    finally:
        setattr(cls, attr, original)


@contextmanager
def _wi_drop_inv_ack():
    """WI: invalidation acks vanish -- the writer's outstanding-ack
    count never reaches zero, so its release fence never completes."""
    from repro.protocols.wi import WINodeCtrl

    def mutated(self, msg):
        pass  # BUG: the ack is dropped on the floor

    with _patched(WINodeCtrl, "_cache_inv_ack", mutated):
        yield


@contextmanager
def _wi_skip_invalidation():
    """WI: the home 'invalidates' sharers by forging their acks without
    ever sending the INVs -- stale shared copies survive a write."""
    from repro.network.messages import MsgType
    from repro.protocols.wi import WINodeCtrl

    def mutated(self, msg, invs, seq):
        c = self.config.prop_issue_cycles
        for k, s in enumerate(invs):
            # BUG: ack on the sharer's behalf instead of invalidating it
            self.sim.schedule(
                k * c,
                lambda: self._send(MsgType.INV_ACK, msg.requester,
                                   msg.block))
        return self.sim.now + len(invs) * c

    with _patched(WINodeCtrl, "_issue_invalidations", mutated):
        yield


@contextmanager
def _pu_upd_prop_overwrite():
    """PU: an incoming UPD_PROP overwrites the whole word instead of
    merging under the writer's byte mask, clobbering this node's own
    sub-word stores."""
    from repro.protocols.update import PUNodeCtrl
    original = PUNodeCtrl._cache_upd_prop

    def mutated(self, msg):
        msg.mask = None  # BUG: forget the byte mask -> full overwrite
        original(self, msg)

    def no_shadow(self, msg, merged):
        # an implementation that forgot the byte mask has no masked
        # store-buffer re-apply either -- the clobber must stay visible
        return merged

    with _patched(PUNodeCtrl, "_cache_upd_prop", mutated), \
            _patched(PUNodeCtrl, "_shadow_pending_stores", no_shadow):
        yield


@contextmanager
def _cu_counter_stuck():
    """CU: the competitive counter keeps counting but the drop never
    happens -- lines stay resident past the update threshold."""
    from repro.protocols.update import CUNodeCtrl

    def mutated(self, line, msg):
        line.update_count += 1
        return False  # BUG: threshold reached but the line never drops

    with _patched(CUNodeCtrl, "_drop_check", mutated):
        yield


MUTATIONS: Dict[str, Mutation] = {m.name: m for m in (
    Mutation("wi-drop-inv-ack",
             "WI drops INV_ACK messages (release fences hang)",
             program="mp", protocol=Protocol.WI,
             _ctx=_wi_drop_inv_ack),
    Mutation("wi-skip-invalidation",
             "WI home forges acks instead of invalidating sharers",
             program="mp", protocol=Protocol.WI,
             _ctx=_wi_skip_invalidation),
    Mutation("pu-upd-prop-overwrite",
             "PU UPD_PROP overwrites instead of byte-merging",
             program="subword", protocol=Protocol.PU,
             _ctx=_pu_upd_prop_overwrite),
    Mutation("cu-counter-stuck",
             "CU update counter reaches threshold without dropping",
             program="subword", protocol=Protocol.CU,
             _ctx=_cu_counter_stuck),
)}


def get_mutation(name: str) -> Mutation:
    try:
        return MUTATIONS[name]
    except KeyError:
        raise KeyError(
            f"unknown mutation {name!r}; "
            f"have {', '.join(sorted(MUTATIONS))}") from None
