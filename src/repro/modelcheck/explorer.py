"""Snapshot-branching exploration of all reachable interleavings.

The explorer walks the schedule tree of a litmus program depth-first,
driven by a :class:`~repro.engine.ControlledSimulator` whose chooser
defaults to candidate 0.  At every choice point with ``n > 1``
candidates it takes one O(state) :meth:`Machine.snapshot` and pushes
``n - 1`` branch records -- ``(snapshot, batch, forced pick)`` -- on
the DFS stack; a branch later *restores* the snapshot, re-queues the
batch, takes its forced pick and continues with default choices.  The
schedule space of a terminating litmus program is a finite tree, so
this enumerates every reachable interleaving even with no pruning at
all -- without ever re-executing a shared schedule prefix (the
historical replay-based explorer re-ran every prefix from cycle 0; the
replay machinery survives in :func:`run_schedule`, which the ``--replay``
CLI and schedule minimization still use).

Generators are the one piece of machine state that cannot be copied;
:meth:`Machine.record_histories` + per-thread spawn factories let
``restore`` rebuild them by replaying their recorded resume values
(thread programs are deterministic functions of the values they
receive).

Two reductions keep it tractable:

* **visited-state dedup** -- at every free choice point the canonical
  state key (see :mod:`repro.modelcheck.state`) is looked up in a
  visited set; a hit abandons the run and suppresses branching at and
  beyond the pruned position (the first visitor already explored every
  continuation of that state).  The key at a branch's *first* free
  choice point is the branch state itself, which the parent run
  already recorded -- it is *not* consulted, only (re)inserted,
  otherwise every branch would self-prune.
* **symmetry reduction** -- the canonical key is minimized over the
  litmus program's declared node/word relabellings, merging
  mirror-image states.

Between every two events the per-state invariants run and the PR-1
checker report is polled; at end of run ``machine.finish()`` (deadlock
attribution + sanitizer finalization), quiescence, the global
directory/cache agreement check and the program's own final assertion
all fire.  Any failure is classified into a :class:`Violation` and the
triggering schedule is greedily minimized (each forced choice is
re-tried as 0; re-runs that still produce the same violation kind keep
the simplification).
"""

from __future__ import annotations


from contextlib import nullcontext
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.engine import ControlledSimulator, DeadlockError, SimulationError
from repro.modelcheck.invariants import (
    InvariantViolation, check_state_invariants,
)
from repro.modelcheck.litmus import LitmusProgram
from repro.modelcheck.state import Symmetry, canonical_key


class _Pruned(Exception):
    """Internal: the run reached an already-visited state."""

    def __init__(self, pos: int) -> None:
        self.pos = pos


class ScheduleDivergence(Exception):
    """A forced choice was out of range for the candidate batch -- the
    schedule does not belong to this program/config/code version."""


@dataclass(frozen=True)
class Violation:
    kind: str      # "deadlock" | "assertion" | "invariant:<rule>" | ...
    detail: str


@dataclass
class ExploreResult:
    program: str
    protocol: str
    mutation: Optional[str]
    schedules: int           # full run attempts (incl. pruned)
    states: int              # distinct canonical states seen
    choice_points: int       # longest choice sequence observed
    events: int              # total simulated events across all runs
    dedup_hits: int
    unhashed: int            # states the encoder could not fingerprint
    violation: Optional[Violation]
    choices: Optional[Tuple[int, ...]]   # minimized counterexample
    complete: bool           # exhausted the schedule tree within budget

    @property
    def clean(self) -> bool:
        return self.violation is None


def _build(litmus: LitmusProgram, config, max_events: int):
    from repro.runtime.machine import Machine

    sim = ControlledSimulator(max_events=max_events)
    machine = Machine(config, sim=sim)
    built = litmus.build(machine)
    histories = machine.record_histories()
    syms = [Symmetry(config, nm, wm) for nm, wm in built.symmetries]
    return machine, built, histories, syms


def _run(machine, built, histories, syms,
         prefix: Tuple[int, ...],
         visited: Optional[set],
         stats: Dict[str, int],
         on_event: Optional[Callable] = None,
         on_choice: Optional[Callable] = None):
    """Execute one schedule.  Returns (trace, violation, pruned_at,
    events_processed)."""
    from repro.checkers import CheckerError

    sim: ControlledSimulator = machine.sim
    trace: List[int] = []

    def chooser(batch):
        pos = len(trace)
        trace.append(len(batch))
        if pos < len(prefix):
            choice = prefix[pos]
            if not 0 <= choice < len(batch):
                raise ScheduleDivergence(
                    f"choice point {pos}: schedule says {choice} but "
                    f"only {len(batch)} events are ready")
        else:
            choice = 0
            if visited is not None:
                key = canonical_key(
                    machine, sim.pending_snapshot() + batch, syms, histories)
                if key is None:
                    stats["unhashed"] += 1
                elif pos > len(prefix):
                    if key in visited:
                        stats["dedup_hits"] += 1
                        raise _Pruned(pos)
                    visited.add(key)
                else:
                    # the branch state itself: the parent run already
                    # visited it -- record, never prune
                    visited.add(key)
        if on_choice is not None:
            on_choice(pos, len(batch), choice)
        return choice

    sim.chooser = chooser
    violation: Optional[Violation] = None
    pruned_at: Optional[int] = None
    try:
        machine.prepare()
        while sim.step(on_event):
            report = machine.checker_report
            if report is not None and report.violations:
                v = report.violations[0]
                violation = Violation(f"checker:{v.rule}", str(v))
                break
            check_state_invariants(machine)
        if violation is None:
            machine.finish()
            if not machine.quiesced():
                violation = Violation(
                    "quiescence",
                    "event queue drained with in-flight work "
                    "(buffered writes, uncollected acks, or open "
                    "transactions) still outstanding")
            else:
                machine.check_coherence_invariants()
                built.final_check(machine)
    except _Pruned as exc:
        pruned_at = exc.pos
    except DeadlockError as exc:
        violation = Violation("deadlock", str(exc))
    except CheckerError as exc:
        rule = (exc.report.violations[0].rule
                if exc.report.violations else "unknown")
        violation = Violation(f"checker:{rule}", str(exc))
    except InvariantViolation as exc:
        violation = Violation(f"invariant:{exc.rule}", exc.detail)
    except AssertionError as exc:
        violation = Violation("assertion", str(exc))
    except SimulationError as exc:
        violation = Violation("livelock", str(exc))
    except RuntimeError as exc:
        violation = Violation("protocol-error", str(exc))
    return trace, violation, pruned_at, sim.events_processed


def run_schedule(litmus: LitmusProgram, config,
                 choices: Tuple[int, ...], max_events: int = 50_000,
                 on_event: Optional[Callable] = None,
                 on_choice: Optional[Callable] = None):
    """Run one explicit schedule (no dedup).  Returns (machine,
    violation)."""
    machine, built, histories, syms = _build(litmus, config, max_events)
    _trace, violation, _pruned, _ev = _run(
        machine, built, histories, syms, tuple(choices), None,
        {"dedup_hits": 0, "unhashed": 0},
        on_event=on_event, on_choice=on_choice)
    return machine, violation


def _minimize(litmus: LitmusProgram, config,
              choices: Tuple[int, ...], kind: str,
              max_events: int, budget: int = 400) -> Tuple[int, ...]:
    """Greedy schedule minimization: flip forced choices back to the
    default 0 wherever the same violation kind still reproduces."""
    best = list(choices)
    while best and best[-1] == 0:
        best.pop()
    tries = 0
    improved = True
    while improved and tries < budget:
        improved = False
        for i in range(len(best)):
            if best[i] == 0:
                continue
            cand = best[:i] + [0] + best[i + 1:]
            while cand and cand[-1] == 0:
                cand.pop()
            tries += 1
            try:
                _m, viol = run_schedule(litmus, config, tuple(cand),
                                        max_events)
            except ScheduleDivergence:
                viol = None
            if viol is not None and viol.kind == kind:
                best = cand
                improved = True
                break
            if tries >= budget:
                break
    return tuple(best)


def explore(litmus: LitmusProgram,
            protocol=None, config=None,
            mutation: Optional[str] = None,
            max_schedules: int = 20_000,
            max_events: int = 50_000,
            dedup: bool = True,
            minimize: bool = True) -> ExploreResult:
    """Exhaustively explore one (program, protocol) pair.

    One machine is built; every other schedule starts from a snapshot
    taken at its branch point, so shared prefixes execute exactly once.
    Stops at the first violation (returning its minimized schedule, via
    the replay path) or when the schedule tree is exhausted;
    ``complete`` is False when the ``max_schedules`` budget ran out
    first.
    """
    from repro.checkers import CheckerError
    from repro.modelcheck.mutations import get_mutation

    if config is None:
        if protocol is None:
            raise ValueError("need protocol or config")
        config = litmus.config(protocol)
    mut_ctx = (get_mutation(mutation).activate()
               if mutation else nullcontext())

    visited: Optional[set] = set() if dedup else None
    stats = {"dedup_hits": 0, "unhashed": 0}
    schedules = 0
    events_total = 0
    choice_points = 0
    complete = True

    def result(violation, choices):
        return ExploreResult(
            program=litmus.name, protocol=config.protocol.value,
            mutation=mutation, schedules=schedules,
            states=len(visited) if visited is not None else 0,
            choice_points=choice_points, events=events_total,
            dedup_hits=stats["dedup_hits"], unhashed=stats["unhashed"],
            violation=violation, choices=choices, complete=complete)

    with mut_ctx:
        machine, built, histories, syms = _build(litmus, config,
                                                 max_events)
        sim: ControlledSimulator = machine.sim

        # DFS stack of untaken branches.  Each record is
        # ((snapshot, batch), picks): `snapshot` is the machine at the
        # branch point with `batch` (the ready candidates) popped off
        # the queue, shared by every sibling; `picks` is the choice
        # sequence up to and including the forced sibling index.
        branches: List[Tuple[tuple, Tuple[int, ...]]] = []
        # chooser state for the run in progress (reset per run):
        # choices made so far, the pending forced pick (branch runs
        # only), and whether the next free choice point is the branch
        # state itself (insert-only, see module docstring)
        run = {"choices": [], "forced": None, "fresh": True,
               "npoints": 0}

        def chooser(batch):
            # counted at entry so a run pruned *at* this position still
            # counts it toward the choice-point depth
            run["npoints"] += 1
            choices: List[int] = run["choices"]
            forced = run["forced"]
            if forced is not None:
                run["forced"] = None
                choices.append(forced)
                return forced
            if visited is not None:
                key = canonical_key(
                    machine, sim.pending_snapshot() + batch, syms, histories)
                if key is None:
                    stats["unhashed"] += 1
                elif run["fresh"]:
                    visited.add(key)
                else:
                    if key in visited:
                        stats["dedup_hits"] += 1
                        raise _Pruned(len(choices))
                    visited.add(key)
            run["fresh"] = False
            if len(batch) > 1:
                rec = (machine.snapshot(), tuple(batch))
                base = tuple(choices)
                for j in range(1, len(batch)):
                    branches.append((rec, base + (j,)))
            choices.append(0)
            return 0

        sim.chooser = chooser

        def run_one(branch):
            """Execute one schedule; returns (violation, events run)."""
            if branch is None:  # the root schedule, from cycle 0
                run["choices"] = []
                run["forced"] = None
                run["fresh"] = True
                run["npoints"] = 0
            else:
                (snap, batch), picks = branch
                machine.restore(snap)
                sim.push_events(batch)
                run["choices"] = list(picks[:-1])
                run["forced"] = picks[-1]
                run["fresh"] = True
                run["npoints"] = len(picks) - 1
            start = sim.events_processed
            violation: Optional[Violation] = None
            try:
                if branch is None:
                    machine.prepare()
                while sim.step():
                    report = machine.checker_report
                    if report is not None and report.violations:
                        v = report.violations[0]
                        violation = Violation(f"checker:{v.rule}",
                                              str(v))
                        break
                    check_state_invariants(machine)
                if violation is None:
                    machine.finish()
                    if not machine.quiesced():
                        violation = Violation(
                            "quiescence",
                            "event queue drained with in-flight work "
                            "(buffered writes, uncollected acks, or "
                            "open transactions) still outstanding")
                    else:
                        machine.check_coherence_invariants()
                        built.final_check(machine)
            except _Pruned:
                pass
            except DeadlockError as exc:
                violation = Violation("deadlock", str(exc))
            except CheckerError as exc:
                rule = (exc.report.violations[0].rule
                        if exc.report.violations else "unknown")
                violation = Violation(f"checker:{rule}", str(exc))
            except InvariantViolation as exc:
                violation = Violation(f"invariant:{exc.rule}",
                                      exc.detail)
            except AssertionError as exc:
                violation = Violation("assertion", str(exc))
            except SimulationError as exc:
                violation = Violation("livelock", str(exc))
            except RuntimeError as exc:
                violation = Violation("protocol-error", str(exc))
            return violation, sim.events_processed - start

        branch = None  # sentinel: first iteration runs the root
        while True:
            if schedules >= max_schedules:
                complete = False
                break
            violation, events = run_one(branch)
            schedules += 1
            events_total += events
            choice_points = max(choice_points, run["npoints"])
            if violation is not None:
                complete = False
                choices = tuple(run["choices"])
                if minimize:
                    choices = _minimize(litmus, config, choices,
                                        violation.kind, max_events)
                return result(violation, choices)
            if not branches:
                break
            branch = branches.pop()
    return result(None, None)
