"""Stateless-search exploration of all reachable interleavings.

Python generators cannot be snapshotted, so the explorer is *replay
based*: every schedule is executed from scratch on a fresh machine,
driven by a :class:`~repro.engine.ControlledSimulator` whose chooser
follows a forced-choice prefix and defaults to index 0 beyond it.  Each
run records, at every choice point, how many candidates were ready;
afterwards the untaken branches (``prefix + (0,)*k + (j,)`` for every
``j >= 1``) are pushed on the DFS stack.  The schedule space of a
terminating litmus program is a finite tree, so this enumerates every
reachable interleaving even with no pruning at all.

Two reductions keep it tractable:

* **visited-state dedup** -- at every choice point *beyond* the forced
  prefix the canonical state key (see :mod:`repro.modelcheck.state`) is
  looked up in a visited set; a hit abandons the run and suppresses
  branching at and beyond the pruned position (the first visitor
  already explored every continuation of that state).  The key at
  ``pos == len(prefix)`` is the branch state itself, which the parent
  run already recorded -- it is *not* consulted, only (re)inserted,
  otherwise every branch would self-prune.
* **symmetry reduction** -- the canonical key is minimized over the
  litmus program's declared node/word relabellings, merging
  mirror-image states.

Between every two events the per-state invariants run and the PR-1
checker report is polled; at end of run ``machine.finish()`` (deadlock
attribution + sanitizer finalization), quiescence, the global
directory/cache agreement check and the program's own final assertion
all fire.  Any failure is classified into a :class:`Violation` and the
triggering schedule is greedily minimized (each forced choice is
re-tried as 0; re-runs that still produce the same violation kind keep
the simplification).
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.engine import ControlledSimulator, DeadlockError, SimulationError
from repro.modelcheck.invariants import (
    InvariantViolation, check_state_invariants,
)
from repro.modelcheck.litmus import LitmusProgram
from repro.modelcheck.state import Symmetry, canonical_key


class _Pruned(Exception):
    """Internal: the run reached an already-visited state."""

    def __init__(self, pos: int) -> None:
        self.pos = pos


class ScheduleDivergence(Exception):
    """A forced choice was out of range for the candidate batch -- the
    schedule does not belong to this program/config/code version."""


@dataclass(frozen=True)
class Violation:
    kind: str      # "deadlock" | "assertion" | "invariant:<rule>" | ...
    detail: str


@dataclass
class ExploreResult:
    program: str
    protocol: str
    mutation: Optional[str]
    schedules: int           # full run attempts (incl. pruned)
    states: int              # distinct canonical states seen
    choice_points: int       # longest choice sequence observed
    events: int              # total simulated events across all runs
    dedup_hits: int
    unhashed: int            # states the encoder could not fingerprint
    violation: Optional[Violation]
    choices: Optional[Tuple[int, ...]]   # minimized counterexample
    complete: bool           # exhausted the schedule tree within budget

    @property
    def clean(self) -> bool:
        return self.violation is None


class _RecordingGen:
    """Wraps a thread generator so every resumed value lands in an
    externally owned history list -- the only part of a generator's
    hidden state the fingerprint needs (programs are deterministic
    functions of their resumed values)."""

    __slots__ = ("_gen", "history")

    def __init__(self, gen, history: list) -> None:
        self._gen = gen
        self.history = history

    def send(self, value):
        self.history.append(value)
        return self._gen.send(value)


def _build(litmus: LitmusProgram, config, max_events: int):
    from repro.runtime.machine import Machine

    sim = ControlledSimulator(max_events=max_events)
    machine = Machine(config, sim=sim)
    built = litmus.build(machine)
    histories: Dict[int, list] = {}
    for proc in machine.processors:
        hist: list = []
        histories[proc.node] = hist
        proc._gen = _RecordingGen(proc._gen, hist)
    syms = [Symmetry(config, nm, wm) for nm, wm in built.symmetries]
    return machine, built, histories, syms


def _step(sim: ControlledSimulator,
          on_event: Optional[Callable] = None) -> bool:
    """One event, with an optional pre-execution hook (replay traces
    print the event before it runs, so the violating transition is the
    last line of the trace)."""
    if sim._stopped or not sim._queue:
        return False
    when, _seq, fn, args = sim._pop_controlled()
    sim.now = when
    sim._count_event()
    if on_event is not None:
        on_event(when, fn, args)
    fn(*args)
    return True


def _run(machine, built, histories, syms,
         prefix: Tuple[int, ...],
         visited: Optional[set],
         stats: Dict[str, int],
         on_event: Optional[Callable] = None,
         on_choice: Optional[Callable] = None):
    """Execute one schedule.  Returns (trace, violation, pruned_at,
    events_processed)."""
    from repro.checkers import CheckerError

    sim: ControlledSimulator = machine.sim
    trace: List[int] = []

    def chooser(batch):
        pos = len(trace)
        trace.append(len(batch))
        if pos < len(prefix):
            choice = prefix[pos]
            if not 0 <= choice < len(batch):
                raise ScheduleDivergence(
                    f"choice point {pos}: schedule says {choice} but "
                    f"only {len(batch)} events are ready")
        else:
            choice = 0
            if visited is not None:
                key = canonical_key(
                    machine, list(sim._queue) + batch, syms, histories)
                if key is None:
                    stats["unhashed"] += 1
                elif pos > len(prefix):
                    if key in visited:
                        stats["dedup_hits"] += 1
                        raise _Pruned(pos)
                    visited.add(key)
                else:
                    # the branch state itself: the parent run already
                    # visited it -- record, never prune
                    visited.add(key)
        if on_choice is not None:
            on_choice(pos, len(batch), choice)
        return choice

    sim.chooser = chooser
    violation: Optional[Violation] = None
    pruned_at: Optional[int] = None
    try:
        machine.prepare()
        while _step(sim, on_event):
            report = machine.checker_report
            if report is not None and report.violations:
                v = report.violations[0]
                violation = Violation(f"checker:{v.rule}", str(v))
                break
            check_state_invariants(machine)
        if violation is None:
            machine.finish()
            if not machine.quiesced():
                violation = Violation(
                    "quiescence",
                    "event queue drained with in-flight work "
                    "(buffered writes, uncollected acks, or open "
                    "transactions) still outstanding")
            else:
                machine.check_coherence_invariants()
                built.final_check(machine)
    except _Pruned as exc:
        pruned_at = exc.pos
    except DeadlockError as exc:
        violation = Violation("deadlock", str(exc))
    except CheckerError as exc:
        rule = (exc.report.violations[0].rule
                if exc.report.violations else "unknown")
        violation = Violation(f"checker:{rule}", str(exc))
    except InvariantViolation as exc:
        violation = Violation(f"invariant:{exc.rule}", exc.detail)
    except AssertionError as exc:
        violation = Violation("assertion", str(exc))
    except SimulationError as exc:
        violation = Violation("livelock", str(exc))
    except RuntimeError as exc:
        violation = Violation("protocol-error", str(exc))
    return trace, violation, pruned_at, sim.events_processed


def _full_choices(prefix: Tuple[int, ...],
                  trace: List[int]) -> Tuple[int, ...]:
    return tuple(prefix[i] if i < len(prefix) else 0
                 for i in range(len(trace)))


def run_schedule(litmus: LitmusProgram, config,
                 choices: Tuple[int, ...], max_events: int = 50_000,
                 on_event: Optional[Callable] = None,
                 on_choice: Optional[Callable] = None):
    """Run one explicit schedule (no dedup).  Returns (machine,
    violation)."""
    machine, built, histories, syms = _build(litmus, config, max_events)
    _trace, violation, _pruned, _ev = _run(
        machine, built, histories, syms, tuple(choices), None,
        {"dedup_hits": 0, "unhashed": 0},
        on_event=on_event, on_choice=on_choice)
    return machine, violation


def _minimize(litmus: LitmusProgram, config,
              choices: Tuple[int, ...], kind: str,
              max_events: int, budget: int = 400) -> Tuple[int, ...]:
    """Greedy schedule minimization: flip forced choices back to the
    default 0 wherever the same violation kind still reproduces."""
    best = list(choices)
    while best and best[-1] == 0:
        best.pop()
    tries = 0
    improved = True
    while improved and tries < budget:
        improved = False
        for i in range(len(best)):
            if best[i] == 0:
                continue
            cand = best[:i] + [0] + best[i + 1:]
            while cand and cand[-1] == 0:
                cand.pop()
            tries += 1
            try:
                _m, viol = run_schedule(litmus, config, tuple(cand),
                                        max_events)
            except ScheduleDivergence:
                viol = None
            if viol is not None and viol.kind == kind:
                best = cand
                improved = True
                break
            if tries >= budget:
                break
    return tuple(best)


def explore(litmus: LitmusProgram,
            protocol=None, config=None,
            mutation: Optional[str] = None,
            max_schedules: int = 20_000,
            max_events: int = 50_000,
            dedup: bool = True,
            minimize: bool = True) -> ExploreResult:
    """Exhaustively explore one (program, protocol) pair.

    Stops at the first violation (returning its minimized schedule) or
    when the schedule tree is exhausted; ``complete`` is False when the
    ``max_schedules`` budget ran out first.
    """
    from repro.modelcheck.mutations import get_mutation

    if config is None:
        if protocol is None:
            raise ValueError("need protocol or config")
        config = litmus.config(protocol)
    mut_ctx = (get_mutation(mutation).activate()
               if mutation else nullcontext())

    visited: Optional[set] = set() if dedup else None
    stats = {"dedup_hits": 0, "unhashed": 0}
    stack: List[Tuple[int, ...]] = [()]
    schedules = 0
    events_total = 0
    choice_points = 0
    complete = True

    def result(violation, choices):
        return ExploreResult(
            program=litmus.name, protocol=config.protocol.value,
            mutation=mutation, schedules=schedules,
            states=len(visited) if visited is not None else 0,
            choice_points=choice_points, events=events_total,
            dedup_hits=stats["dedup_hits"], unhashed=stats["unhashed"],
            violation=violation, choices=choices, complete=complete)

    with mut_ctx:
        while stack:
            if schedules >= max_schedules:
                complete = False
                break
            prefix = stack.pop()
            machine, built, histories, syms = _build(
                litmus, config, max_events)
            trace, violation, pruned_at, events = _run(
                machine, built, histories, syms, prefix, visited, stats)
            schedules += 1
            events_total += events
            choice_points = max(choice_points, len(trace))
            if violation is not None:
                complete = False
                choices = _full_choices(prefix, trace)
                if minimize:
                    choices = _minimize(litmus, config, choices,
                                        violation.kind, max_events)
                return result(violation, choices)
            limit = len(trace) if pruned_at is None else pruned_at
            for i in range(len(prefix), limit):
                for j in range(1, trace[i]):
                    stack.append(prefix + (0,) * (i - len(prefix)) + (j,))
    return result(None, None)
