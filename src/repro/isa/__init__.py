"""Operation vocabulary of the execution-driven front-end (subsystem S2).

Simulated threads are Python generators that ``yield`` operations from
this module; the :class:`~repro.runtime.processor.Processor` executes
each operation against the node's cache controller and resumes the
generator with the result.  This replaces the paper's MINT MIPS
interpreter: the constructs' communication behaviour is fully determined
by their shared-reference streams, which the pseudo-code in the paper
maps onto one-for-one.
"""

from repro.isa.ops import (
    Op, Read, Write, Compute, FetchAdd, FetchStore, CompareSwap,
    Flush, FlushCache, Fence, SpinUntil, CallHook, Fork, Join,
    fetch_and_decrement,
)

__all__ = [
    "Op", "Read", "Write", "Compute", "FetchAdd", "FetchStore",
    "CompareSwap", "Flush", "FlushCache", "Fence", "SpinUntil",
    "CallHook", "Fork", "Join", "fetch_and_decrement",
]
