"""Operations a simulated thread may yield.

Timing semantics (paper section 3.1):

* :class:`Compute` -- ``n`` 1-cycle instructions of private work;
* :class:`Read` -- 1 cycle on a hit (or write-buffer forward); a miss
  stalls the processor until the fill arrives;
* :class:`Write` -- 1 cycle into the write buffer, unless the buffer is
  full, in which case the processor stalls until an entry frees;
* atomics (:class:`FetchAdd`, :class:`FetchStore`, :class:`CompareSwap`)
  -- force a write-buffer flush, then stall until the operation
  completes (in the cache controller under WI; at the home memory under
  PU/CU);
* :class:`Fence` -- release point: stalls until the write buffer has
  drained and all outstanding invalidation/update acknowledgements have
  been collected (release consistency);
* :class:`Flush` -- the user-level block-flush instruction used by the
  update-conscious MCS lock;
* :class:`FlushCache` -- whole-cache flush (the PU fork optimization);
* :class:`SpinUntil` -- busy-wait on a word until a predicate holds.
  Each re-check is an ordinary (classified) read; between coherence
  events the processor spins on its cached copy without generating
  traffic, so the simulator parks it until the local copy changes.
"""

from __future__ import annotations

from typing import Any, Callable, Tuple


class Op:
    """Base class for all operations (exists for isinstance checks)."""

    __slots__ = ()


class Read(Op):
    __slots__ = ("addr",)

    def __init__(self, addr: int) -> None:
        self.addr = addr

    def __repr__(self) -> str:  # pragma: no cover
        return f"Read({self.addr:#x})"


class Write(Op):
    """A store.

    ``mask`` models sub-word (byte) stores: only the masked bits of the
    word are modified, as with the byte flags of the tree barrier's
    ``childnotready`` array.  ``mask=None`` (default) is a full-word
    store.  Masked stores merge at every coherence point (writer's
    cache, home memory), so concurrent stores to *different* bytes of
    one word never lose each other -- exactly the hardware guarantee
    byte stores provide.
    """

    __slots__ = ("addr", "value", "mask")

    def __init__(self, addr: int, value: Any,
                 mask: "int | None" = None) -> None:
        self.addr = addr
        self.value = value
        self.mask = mask

    def __repr__(self) -> str:  # pragma: no cover
        m = f", mask={self.mask:#x}" if self.mask is not None else ""
        return f"Write({self.addr:#x}, {self.value!r}{m})"


def merge_word(old: Any, value: Any, mask: "int | None") -> Any:
    """Apply a (possibly sub-word) store to an existing word value."""
    if mask is None:
        return value
    if old is None:
        old = 0
    return (old & ~mask) | (value & mask)


class Compute(Op):
    __slots__ = ("cycles",)

    def __init__(self, cycles: int) -> None:
        if cycles < 0:
            raise ValueError("compute cycles must be >= 0")
        self.cycles = cycles

    def __repr__(self) -> str:  # pragma: no cover
        return f"Compute({self.cycles})"


class _AtomicOp(Op):
    __slots__ = ("addr",)
    opname = ""


class FetchAdd(_AtomicOp):
    """fetch_and_add: returns the old value."""

    __slots__ = ("delta",)
    opname = "faa"

    def __init__(self, addr: int, delta: int = 1) -> None:
        self.addr = addr
        self.delta = delta

    @property
    def operand(self) -> Any:
        return self.delta

    def __repr__(self) -> str:  # pragma: no cover
        return f"FetchAdd({self.addr:#x}, {self.delta})"


class FetchStore(_AtomicOp):
    """fetch_and_store (atomic swap): returns the old value."""

    __slots__ = ("value",)
    opname = "fas"

    def __init__(self, addr: int, value: Any) -> None:
        self.addr = addr
        self.value = value

    @property
    def operand(self) -> Any:
        return self.value

    def __repr__(self) -> str:  # pragma: no cover
        return f"FetchStore({self.addr:#x}, {self.value!r})"


class CompareSwap(_AtomicOp):
    """compare_and_swap: returns True on success."""

    __slots__ = ("expected", "new")
    opname = "cas"

    def __init__(self, addr: int, expected: Any, new: Any) -> None:
        self.addr = addr
        self.expected = expected
        self.new = new

    @property
    def operand(self) -> Tuple[Any, Any]:
        return (self.expected, self.new)

    def __repr__(self) -> str:  # pragma: no cover
        return f"CompareSwap({self.addr:#x}, {self.expected!r}, {self.new!r})"


class Flush(Op):
    """User-level block flush (PowerPC-604-style)."""

    __slots__ = ("addr",)

    def __init__(self, addr: int) -> None:
        self.addr = addr

    def __repr__(self) -> str:  # pragma: no cover
        return f"Flush({self.addr:#x})"


class FlushCache(Op):
    """Flush the whole local cache (fork-time PU optimization)."""

    __slots__ = ()


class Fence(Op):
    """Release point: drain write buffer + collect outstanding acks."""

    __slots__ = ()


class SpinUntil(Op):
    """Busy-wait reading ``addr`` until ``predicate(value)`` is true.

    Returns the satisfying value.
    """

    __slots__ = ("addr", "predicate")

    def __init__(self, addr: int, predicate: Callable[[Any], bool]) -> None:
        self.addr = addr
        self.predicate = predicate

    def __repr__(self) -> str:  # pragma: no cover
        return f"SpinUntil({self.addr:#x})"


class Fork(Op):
    """Create a parallel thread on an idle node.

    Under the update-based protocols the runtime flushes the forking
    processor's cache first (the paper's PU optimization 2: it
    "eliminates useless updates of data written by the parent but not
    subsequently needed by the child" -- the parent stops being a
    sharer of everything it touched before the fork).  Returns a join
    handle for :class:`Join`.
    """

    __slots__ = ("node", "program")

    def __init__(self, node: int, program) -> None:
        self.node = node
        self.program = program

    def __repr__(self) -> str:  # pragma: no cover
        return f"Fork(node={self.node})"


class Join(Op):
    """Wait for a forked thread to finish.

    Takes the handle returned by yielding :class:`Fork`.
    """

    __slots__ = ("handle",)

    def __init__(self, handle) -> None:
        self.handle = handle

    def __repr__(self) -> str:  # pragma: no cover
        return f"Join({self.handle!r})"


class CallHook(Op):
    """Escape hatch into the simulation kernel.

    ``fn(proc, resume)`` is invoked with the executing processor and a
    ``resume(value)`` callback; the thread continues (with ``value``)
    when the callback fires.  Used by the *ideal* (zero-traffic)
    synchronization primitives of the reduction experiments, which must
    serialize processors in simulated time without generating memory
    references (paper section 4.3).
    """

    __slots__ = ("fn",)

    def __init__(self, fn: Callable[..., None]) -> None:
        self.fn = fn


def fetch_and_decrement(addr: int) -> FetchAdd:
    """The fetch_and_decrement used by the centralized barrier."""
    return FetchAdd(addr, -1)


def apply_atomic(opname: str, old: Any, operand: Any) -> Tuple[Any, Any]:
    """Pure semantics of the three atomic primitives.

    Returns ``(new_value, result)``.  Used by whichever component owns
    the atomic's computation (cache controller under WI, home memory
    under PU/CU).
    """
    if old is None:
        old = 0
    if opname == "faa":
        return old + operand, old
    if opname == "fas":
        return operand, old
    if opname == "cas":
        expected, new = operand
        if old == expected:
            return new, True
        return old, False
    raise ValueError(f"unknown atomic op {opname!r}")
