"""AST conformance: diff the protocol source against its spec table.

For every event a protocol handles -- each ``MsgType`` in the
controller's ``HANDLERS`` plus the ``local:*`` processor stimuli -- this
pass extracts what the bound handler *actually does* and compares it
with the union of the actions the spec's transition rows declare for
that event.  The spec can therefore never silently drift from the code:
removing a send, dropping an ack, or rerouting a message shows up as a
``conformance`` finding with the handler's file:line.

Extraction walks the handler's AST (``inspect.getsource`` per *method
object*, so runtime monkey-patches -- e.g. the seeded mutations of
:mod:`repro.modelcheck.mutations` -- are seen exactly as the simulator
would run them) and records:

* ``send:X`` for ``self._send(MsgType.X, ...)``;
* ``cache:=S`` / ``dir:=S`` for ``<lvalue>.state = CacheState.S`` /
  ``DirState.S`` assignments;
* ``install`` / ``invalidate`` / ``cache_write`` for the corresponding
  ``self.cache`` calls, ``mem_write`` for ``self.mem.write_*``, and
  ``atomic_op`` for ``apply_atomic(...)``;
* an abstract token for calls to the well-known plumbing helpers
  (``self._ack_collected()`` -> ``ack``, ``self._retire_done()`` ->
  ``retire_done``, ...), without descending into them;
* recursively, the effects of protocol helper methods the handler
  references (``self._rdex_txn``, ``self._issue_invalidations``, a
  transaction body passed to ``_begin_txn``, or an explicit
  ``WINodeCtrl._read_txn`` in the hybrid dispatchers).

The recursion resolves method names through the concrete class's MRO,
so the CU controller's ``_drop_check`` contributes its drop actions
while the PU controller's contributes nothing -- same source, different
table, both checked.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.network.messages import MsgType
from repro.protospec.model import LOCAL_EVENTS, ProtocolSpec
from repro.staticcheck.report import Finding

#: plumbing helpers summarized as one abstract action (not descended)
TOKEN_METHODS = {
    "_ack_collected": "ack",
    "_retire_done": "retire_done",
    "_end_txn": "end_txn",
    "_retry_txn": "retry_txn",
    "_begin_txn": "begin_txn",
    "_evict": "evict",
    "_finish_atomic": "finish_atomic",
    "_apply_store": "apply_store",
    "_complete_fill": "fill",
}

#: helpers with no protocol-visible effect of their own; referenced all
#: over, never worth descending into (descending into _maybe_retire
#: would smear the *next* write's transaction into every handler)
IGNORE_METHODS = {
    "_send", "_ref", "_check_fence", "_maybe_retire", "_when_drained",
    "home_of", "local_view", "receive", "quiesced", "_enqueue_write",
    "fence", "wrap_fence", "_fence_ok", "write", "atomic",
    "flush_block", "flush_all",
}

#: class names the hybrid dispatchers reference explicitly
_PROTOCOL_CLASS_NAMES = ("NodeCtrl", "WINodeCtrl", "PUNodeCtrl",
                         "CUNodeCtrl", "HybridNodeCtrl", "MESINodeCtrl")


def _protocol_classes() -> Dict[str, type]:
    from repro.protocols import (
        CUNodeCtrl, HybridNodeCtrl, MESINodeCtrl, NodeCtrl, PUNodeCtrl,
        WINodeCtrl,
    )
    return {"NodeCtrl": NodeCtrl, "WINodeCtrl": WINodeCtrl,
            "PUNodeCtrl": PUNodeCtrl, "CUNodeCtrl": CUNodeCtrl,
            "HybridNodeCtrl": HybridNodeCtrl,
            "MESINodeCtrl": MESINodeCtrl}


class ExtractionError(RuntimeError):
    """A handler could not be parsed (missing source, bad reference)."""


#: effect name -> (file, line) of the function that first contributed it
EffectMap = Dict[str, Tuple[str, int]]


def _msgtype_name(node: ast.AST) -> Optional[str]:
    """``MsgType.X`` attribute access -> ``"X"``."""
    if isinstance(node, ast.Attribute) and \
            isinstance(node.value, ast.Name) and \
            node.value.id == "MsgType" and \
            node.attr in MsgType.__members__:
        return node.attr
    return None


def _self_attr(node: ast.AST) -> Optional[str]:
    """``self.X`` -> ``"X"``."""
    if isinstance(node, ast.Attribute) and \
            isinstance(node.value, ast.Name) and node.value.id == "self":
        return node.attr
    return None


def _self_sub_attr(node: ast.AST) -> Optional[Tuple[str, str]]:
    """``self.Y.Z`` -> ``("Y", "Z")``."""
    if isinstance(node, ast.Attribute) and \
            isinstance(node.value, ast.Attribute) and \
            isinstance(node.value.value, ast.Name) and \
            node.value.value.id == "self":
        return node.value.attr, node.attr
    return None


def _class_attr(node: ast.AST) -> Optional[Tuple[str, str]]:
    """``WINodeCtrl.X`` -> ``("WINodeCtrl", "X")``."""
    if isinstance(node, ast.Attribute) and \
            isinstance(node.value, ast.Name) and \
            node.value.id in _PROTOCOL_CLASS_NAMES:
        return node.value.id, node.attr
    return None


def _function_of(obj) -> Callable:
    """Unwrap a bound/unbound method to its plain function."""
    return inspect.unwrap(getattr(obj, "__func__", obj))


class _Extractor:
    """Transitive effect extraction for one concrete controller class."""

    def __init__(self, cls: type) -> None:
        self.cls = cls
        self.classes = _protocol_classes()

    def extract(self, method_name: str) -> EffectMap:
        effects: EffectMap = {}
        self._visit_method(getattr(self.cls, method_name), effects,
                           seen=set())
        return effects

    # -- recursion -----------------------------------------------------

    def _visit_method(self, method, effects: EffectMap,
                      seen: Set[int]) -> None:
        func = _function_of(method)
        if id(func) in seen:
            return
        seen.add(id(func))
        try:
            source = textwrap.dedent(inspect.getsource(func))
        except (OSError, TypeError) as exc:
            raise ExtractionError(
                f"cannot read source of {func!r}: {exc}") from exc
        tree = ast.parse(source)
        where = (func.__code__.co_filename, func.__code__.co_firstlineno)
        self._visit_tree(tree, where, effects, seen)

    def _record(self, effects: EffectMap, name: str,
                where: Tuple[str, int]) -> None:
        effects.setdefault(name, where)

    def _follow(self, attr: str, owner: Optional[type],
                effects: EffectMap, seen: Set[int],
                where: Tuple[str, int]) -> None:
        """A reference to method ``attr`` (on ``self`` or an explicit
        protocol class): summarize, ignore, or descend."""
        if attr in TOKEN_METHODS:
            self._record(effects, TOKEN_METHODS[attr], where)
            return
        if attr in IGNORE_METHODS:
            return
        target = getattr(owner or self.cls, attr, None)
        if target is None or not callable(target):
            return
        func = _function_of(target)
        module = getattr(func, "__module__", "") or ""
        # descend only into protocol code (and the seeded-mutation
        # module, whose patched bodies stand in for protocol code)
        if not (module.startswith("repro.protocols")
                or module.startswith("repro.modelcheck")):
            return
        self._visit_method(target, effects, seen)

    # -- one function body ---------------------------------------------

    def _visit_tree(self, tree: ast.AST, where: Tuple[str, int],
                    effects: EffectMap, seen: Set[int]) -> None:
        for node in ast.walk(tree):
            line = (where[0], where[1] + max(
                getattr(node, "lineno", 1) - 1, 0))
            # ---- assignments: <lvalue>.state = CacheState.X (enum
            # form) or <lvalue>.state_code = STATE_X / <lvalue>.dstate
            # = DIR_X (the flat int-code form the hot paths use) ------
            if isinstance(node, ast.Assign):
                value = node.value
                for target in node.targets:
                    if not isinstance(target, ast.Attribute):
                        continue
                    if target.attr == "state":
                        if isinstance(value, ast.Attribute) and \
                                isinstance(value.value, ast.Name):
                            base = value.value.id
                            if base == "CacheState":
                                self._record(
                                    effects,
                                    f"cache:={value.attr}", line)
                            elif base == "DirState":
                                self._record(
                                    effects, f"dir:={value.attr}", line)
                    elif target.attr == "state_code" and \
                            isinstance(value, ast.Name) and \
                            value.id.startswith("STATE_"):
                        self._record(
                            effects,
                            f"cache:={value.id[len('STATE_'):]}", line)
                    elif target.attr == "dstate" and \
                            isinstance(value, ast.Name) and \
                            value.id.startswith("DIR_"):
                        self._record(
                            effects,
                            f"dir:={value.id[len('DIR_'):]}", line)
                continue
            # ---- ent.early_wb_mask |= ... : record a mid-transaction
            # writeback from the incoming owner ------------------------
            if isinstance(node, ast.AugAssign) and \
                    isinstance(node.op, ast.BitOr) and \
                    isinstance(node.target, ast.Attribute) and \
                    node.target.attr == "early_wb_mask":
                self._record(effects, "note_early_wb", line)
                continue
            if not isinstance(node, ast.Call):
                # a bare reference (``self.sim.at(t, self._end_txn,
                # ...)``, ``body = WINodeCtrl._read_txn``) still wires
                # the method into the handler's behaviour
                attr = _self_attr(node)
                if attr is not None:
                    self._follow(attr, None, effects, seen, line)
                    continue
                # likewise a bare ``self.mem.write_block`` /
                # ``self.cache.*`` reference scheduled as a callback
                sub = _self_sub_attr(node)
                if sub is not None:
                    owner, meth = sub
                    if owner == "cache":
                        if meth == "install":
                            self._record(effects, "install", line)
                        elif meth == "invalidate":
                            self._record(effects, "invalidate", line)
                        elif meth == "write_word":
                            self._record(effects, "cache_write", line)
                    elif owner == "mem" and meth in ("write_word",
                                                     "write_block"):
                        self._record(effects, "mem_write", line)
                    continue
                cls_ref = _class_attr(node)
                if cls_ref is not None:
                    cname, attr = cls_ref
                    self._follow(attr, self.classes[cname], effects,
                                 seen, line)
                continue
            fn = node.func
            # ---- self._send(MsgType.X, ...) --------------------------
            attr = _self_attr(fn)
            if attr == "_send":
                name = _msgtype_name(node.args[0]) if node.args else None
                self._record(effects,
                             f"send:{name}" if name else "send:?", line)
                continue
            if attr is not None:
                self._follow(attr, None, effects, seen, line)
                continue
            # ---- self.cache.* / self.mem.* ---------------------------
            sub = _self_sub_attr(fn)
            if sub is not None:
                owner, meth = sub
                if owner == "cache":
                    if meth == "install":
                        self._record(effects, "install", line)
                    elif meth == "invalidate":
                        self._record(effects, "invalidate", line)
                    elif meth == "write_word":
                        self._record(effects, "cache_write", line)
                elif owner == "mem" and meth in ("write_word",
                                                 "write_block"):
                    self._record(effects, "mem_write", line)
                continue
            # ---- apply_atomic(...) -----------------------------------
            if isinstance(fn, ast.Name) and fn.id == "apply_atomic":
                self._record(effects, "atomic_op", line)
                continue
            cls_ref = _class_attr(fn)
            if cls_ref is not None:
                cname, attr = cls_ref
                self._follow(attr, self.classes[cname], effects, seen,
                             line)


# ----------------------------------------------------------------------
# public API
# ----------------------------------------------------------------------

def handler_effects(cls: type) -> Dict[str, EffectMap]:
    """Extract effects for every event the class handles: MsgType names
    from ``cls.HANDLERS`` plus the ``local:*`` stimuli."""
    ex = _Extractor(cls)
    out: Dict[str, EffectMap] = {}
    for mtype, method_name in cls.HANDLERS.items():
        out[mtype.name] = ex.extract(method_name)
    for event, method_name in LOCAL_EVENTS.items():
        if getattr(cls, method_name, None) is not None:
            out[event] = ex.extract(method_name)
    return out


def _relpath(path: str) -> str:
    import os
    cwd = os.getcwd()
    if path.startswith(cwd + os.sep):
        return path[len(cwd) + 1:]
    return path


def check_conformance(spec: ProtocolSpec, cls: type) -> List[Finding]:
    """Diff the spec's per-event action unions against the class's
    extracted handler effects."""
    findings: List[Finding] = []
    proto = spec.protocol

    # spec-side union of actions per event (both sides merged: a single
    # controller plays both roles, so one handler serves the event)
    declared: Dict[str, Set[str]] = {}
    for side in spec.sides:
        for row in side.rows:
            declared.setdefault(row.event, set()).update(row.actions)
        for ev in side.events:
            declared.setdefault(ev, set())

    extracted = handler_effects(cls)

    handled_msgs = {m.name for m in cls.HANDLERS}
    for event in sorted(declared):
        is_local = event.startswith("local:")
        if not is_local and event not in handled_msgs:
            # fail-fast construction also catches this; keep it in the
            # static report so the table and code are diffed offline too
            findings.append(Finding(
                check="conformance",
                ident=f"conformance:{proto}:{event}:unhandled",
                detail=f"{cls.__name__} has no handler for {event}, "
                       f"which the {proto} table routes to it",
                protocol=proto, event=event))
            continue
        if event not in extracted:
            findings.append(Finding(
                check="conformance",
                ident=f"conformance:{proto}:{event}:unhandled",
                detail=f"{cls.__name__} has no entry point for "
                       f"{event}",
                protocol=proto, event=event))
            continue
        code = extracted[event]
        table = declared[event]
        entry = (cls.HANDLERS[MsgType[event]] if not is_local
                 else LOCAL_EVENTS[event])
        entry_fn = _function_of(getattr(cls, entry))
        entry_where = (_relpath(entry_fn.__code__.co_filename),
                       entry_fn.__code__.co_firstlineno)
        for action in sorted(table - set(code)):
            findings.append(Finding(
                check="conformance",
                ident=f"conformance:{proto}:{event}:missing:{action}",
                detail=f"table row(s) for {event} declare {action!r} "
                       f"but {cls.__name__}.{entry} (and the helpers "
                       f"it reaches) never does it",
                protocol=proto, event=event,
                file=entry_where[0], line=entry_where[1]))
        for action in sorted(set(code) - table):
            file, line = code[action]
            findings.append(Finding(
                check="conformance",
                ident=f"conformance:{proto}:{event}:undeclared:{action}",
                detail=f"{cls.__name__}.{entry} does {action!r} on "
                       f"{event}, which no {proto} table row declares",
                protocol=proto, event=event,
                file=_relpath(file), line=line))

    # messages the code handles that the table does not route at all
    for event in sorted(handled_msgs - set(declared)):
        method = cls.HANDLERS[MsgType[event]]
        fn = _function_of(getattr(cls, method))
        findings.append(Finding(
            check="conformance",
            ident=f"conformance:{proto}:{event}:unrouted",
            detail=f"{cls.__name__} handles {event} but the {proto} "
                   f"table does not list it on either side",
            protocol=proto, event=event,
            file=_relpath(fn.__code__.co_filename),
            line=fn.__code__.co_firstlineno))
    return findings


def check_dispatch_tables(spec: ProtocolSpec, cls: type,
                          protocol) -> List[Finding]:
    """Round-trip the *compiled execution table* against the spec.

    Since the array-native refactor, the spec is not just documentation:
    :func:`repro.protocols.base.compile_dispatch` turns
    ``spec.receivable()`` into the dense ``MsgType.index``-indexed
    handler table the simulator actually dispatches through.  This
    check re-derives the expected table row-for-row from the spec and
    diffs it against the compiled one, so a stale memo, an index-scheme
    change or a compile bug is a static finding rather than a silently
    mis-routed (or dropped) message at run time.
    """
    from repro.network.messages import MSG_TYPES
    from repro.protocols.base import compile_dispatch

    findings: List[Finding] = []
    proto = spec.protocol
    table = compile_dispatch(cls, protocol)
    receivable = spec.receivable()

    if len(table) != len(MSG_TYPES):
        findings.append(Finding(
            check="dispatch",
            ident=f"dispatch:{proto}:table-size",
            detail=f"compiled table has {len(table)} slots for "
                   f"{len(MSG_TYPES)} message types; dense "
                   f"MsgType.index dispatch is broken",
            protocol=proto))
        return findings

    for mtype in MSG_TYPES:
        compiled = table[mtype.index]
        if mtype in receivable:
            expected = cls.HANDLERS.get(mtype)
            if compiled != expected:
                findings.append(Finding(
                    check="dispatch",
                    ident=f"dispatch:{proto}:{mtype.name}:mismatch",
                    detail=f"slot {mtype.index} ({mtype.name}) compiled "
                           f"to {compiled!r} but the spec routes it to "
                           f"{cls.__name__}.{expected}",
                    protocol=proto, event=mtype.name))
            elif not callable(getattr(cls, compiled, None)):
                findings.append(Finding(
                    check="dispatch",
                    ident=f"dispatch:{proto}:{mtype.name}:unresolvable",
                    detail=f"slot {mtype.index} ({mtype.name}) names "
                           f"{compiled!r}, which {cls.__name__} does "
                           f"not define as a callable",
                    protocol=proto, event=mtype.name))
        elif compiled is not None:
            findings.append(Finding(
                check="dispatch",
                ident=f"dispatch:{proto}:{mtype.name}:spurious",
                detail=f"slot {mtype.index} ({mtype.name}) compiled to "
                       f"{compiled!r} but the {proto} spec never "
                       f"routes {mtype.name} to a node",
                protocol=proto, event=mtype.name))
    return findings
