"""Exhaustive spec-graph exploration: tables only, no simulator.

Builds the **product graph** of two cache-side machines and one
home-side machine executing a :class:`~repro.protospec.ProtocolSpec`
symbolically -- every reachable combination of cache states, home
state, directory bookkeeping (owner / sharers), in-flight messages and
outstanding acks, under every message interleaving the network allows
(per-(src,dst) FIFO channels, arbitrary cross-channel reordering) --
and checks, statically:

* **deadlock-freedom** -- no reachable non-quiescent state without a
  successor (a transaction that can never complete);
* **livelock-freedom** -- from every reachable state some quiescent
  state is reachable (retry/NACK loops must terminate under the FIFO
  fairness the tables claim);
* **message-race completeness** -- no reachable delivery hits a
  ``(state, event)`` pair the spec declared :class:`Impossible` (the
  written reason was wrong) or left without a row;
* **stale-copy freedom** -- at quiescence every resident copy holds
  the latest serialized write, and memory does too whenever no owner
  is recorded;
* **cu-counter** -- a resident update-managed line never reaches the
  competitive threshold;
* **coverage** -- spec states or rows never exercised by any
  interleaving are reported (dead transients rot).

Every violation carries a **minimized counterexample path** (BFS finds
shortest traces) whose steps name the rows that fired, attributed back
to ``file:line`` in the spec builder source.

The model is deliberately small and finite:

* one block, two cache agents, one home -- every protocol race in
  :mod:`repro.protospec` is a two-party race (requester vs. owner or
  requester vs. sharer) plus the home;
* each agent issues at most ``max_ops`` processor operations (read /
  store / atomic / evict), so writes -- and therefore data versions --
  are bounded;
* data freshness is abstract: a copy / memory / message is ``F``
  (holds the latest serialized write), ``S`` (stale), or ``P`` (a
  write-through copy whose UPDATE has not been serialized by the home
  yet).  Serialization points follow the protocols: immediate at the
  cache for invalidation-style exclusive writes, at the home for
  write-throughs and home-side atomics;
* the competitive-update counter is modeled directly with a small
  threshold.

``hybrid`` specs are explored by guard-prefix projection: the
"WI-managed block" and "update-managed block" sub-machines run
separately (a block is managed by exactly one base protocol, so the
product of the two is never reachable) and coverage is the union.

:data:`SPEC_MUTATIONS` mirrors the four seeded runtime mutations of
:mod:`repro.modelcheck.mutations` at the table level; the explorer
must catch each one with a counterexample path, which is what
``staticcheck --graph-mutants`` (and the cross-validation test) pins.
"""

from __future__ import annotations

import inspect
import os
import re
from dataclasses import dataclass, field, replace
from typing import (
    Callable, Dict, FrozenSet, Iterable, List, Optional, Set, Tuple,
)

from repro.protospec.model import (
    ANY_STATE, LOCAL_PREFIX, Impossible, ProtocolSpec, SideSpec,
    TransitionRow,
)
from repro.staticcheck.report import Finding

#: the two cache agents; the home is its own third party
AGENTS = (0, 1)
HOME = "home"

#: freshness tags (see module docstring)
FRESH, STALE, PENDING = "F", "S", "P"

# ---------------------------------------------------------------------
# message routing
# ---------------------------------------------------------------------

#: cache-side sends addressed to the home
_TO_HOME = frozenset((
    "READ_REQ", "RDEX_REQ", "UPGRADE_REQ", "UPDATE", "ATOMIC_REQ",
    "WRITEBACK", "DROP_NOTICE", "REPL_HINT", "SHARING_WB",
    "DIRTY_TRANSFER", "RECALL_REPLY", "FWD_NACK",
))
#: cache-side sends addressed to the requester of the triggering
#: message (acks and owner-to-requester data)
_TO_REQUESTER = frozenset((
    "INV_ACK", "UPD_ACK", "OWNER_DATA", "OWNER_DATA_EX",
))
#: home-side sends addressed to the requester being served
_HOME_TO_REQUESTER = frozenset((
    "READ_REPLY", "RDEX_REPLY", "UPGRADE_REPLY", "EXCL_REPLY",
    "WRITER_ACK", "ATOMIC_REPLY",
))
#: home-side sends addressed to the recorded owner
_HOME_TO_OWNER = frozenset(("FETCH_FWD", "FETCH_INV_FWD", "RECALL"))
#: home-side fanout to every sharer except the requester
_HOME_FANOUT = frozenset(("INV", "UPD_PROP"))

#: sends that carry the sender's copy data (tag captured at row entry)
_CARRIES_COPY = frozenset((
    "OWNER_DATA", "OWNER_DATA_EX", "WRITEBACK", "SHARING_WB",
    "RECALL_REPLY",
))
#: home sends that carry memory data
_CARRIES_MEM = frozenset((
    "READ_REPLY", "RDEX_REPLY", "EXCL_REPLY", "ATOMIC_REPLY",
    "UPD_PROP",
))
#: data grants a waiting cache will install/fill from; an INV fanned
#: while one is in flight to its target is NEWER than that grant and
#: must invalidate what it installs (it is not born stale)
_DATA_GRANTS = frozenset((
    "READ_REPLY", "OWNER_DATA", "RDEX_REPLY", "OWNER_DATA_EX",
    "UPGRADE_REPLY", "EXCL_REPLY",
))
#: grants whose ``nacks`` field tells the requester how many acks the
#: same serving row fanned out on its behalf
_CARRIES_NACKS = frozenset((
    "RDEX_REPLY", "UPGRADE_REPLY", "WRITER_ACK", "ATOMIC_REPLY",
))


@dataclass(frozen=True)
class Msg:
    """One in-flight message (no payload beyond the freshness tag)."""

    type: str
    src: object                  # 0 | 1 | "home"
    dst: object
    requester: int
    tag: str = FRESH
    nacks: int = 0
    retain: bool = False
    #: an INV whose target copy was replaced while it was in flight;
    #: the runtime filters these with install sequence numbers
    #: (``line.seq <= msg.seq``), the model with this flag
    stale_epoch: bool = False

    def label(self) -> str:
        return f"{self.type} {self.src}->{self.dst}"


_CHANNELS = ((0, HOME), (1, HOME), (HOME, 0), (HOME, 1), (0, 1), (1, 0))


@dataclass
class World:
    """One mutable product state (frozen to a tuple for hashing)."""

    cstate: List[str]
    copy: List[Optional[Tuple[str, int]]]    # (tag, counter) | None
    acks: List[int]
    budget: List[int]
    #: a current-epoch INV overtook this agent's pending read fill;
    #: the fill's data will be consumed once and the block dropped
    #: (PendingFill.inv_seq in the runtime)
    poisoned: List[bool]
    home: str
    owner: Optional[int]
    sharers: FrozenSet[int]
    mem: str
    open_txn: Optional[Msg]
    queue: Tuple[Msg, ...]
    chans: Dict[Tuple, Tuple[Msg, ...]]
    #: agents whose WRITEBACK arrived mid-transaction, before the
    #: DIRTY_TRANSFER naming them owner (DirEntry.early_wb_mask)
    early_wb: FrozenSet[int]

    def clone(self) -> "World":
        return World(cstate=list(self.cstate), copy=list(self.copy),
                     acks=list(self.acks), budget=list(self.budget),
                     poisoned=list(self.poisoned),
                     home=self.home, owner=self.owner,
                     sharers=self.sharers, mem=self.mem,
                     open_txn=self.open_txn, queue=self.queue,
                     chans=dict(self.chans), early_wb=self.early_wb)

    def freeze(self) -> tuple:
        return (tuple(self.cstate), tuple(self.copy), tuple(self.acks),
                tuple(self.budget), tuple(self.poisoned),
                self.home, self.owner, self.sharers,
                self.mem, self.open_txn, self.queue,
                tuple(self.chans[c] for c in _CHANNELS),
                self.early_wb)

    # -- network ------------------------------------------------------

    def push(self, msg: Msg) -> None:
        key = (msg.src, msg.dst)
        self.chans[key] = self.chans[key] + (msg,)

    def in_flight(self) -> bool:
        return any(self.chans[c] for c in _CHANNELS)

    # -- freshness ----------------------------------------------------

    def serialize_write(self) -> None:
        """A new write enters the coherence order: everything that was
        'latest' is now stale; the caller marks the new owners fresh.
        ``P`` copies/messages are untouched -- their writes are still
        ahead in the (unserialized) future."""
        for i in AGENTS:
            if self.copy[i] is not None and self.copy[i][0] == FRESH:
                self.copy[i] = (STALE, self.copy[i][1])
        if self.mem == FRESH:
            self.mem = STALE
        for key in _CHANNELS:
            self.chans[key] = tuple(
                replace(m, tag=STALE) if m.tag == FRESH else m
                for m in self.chans[key])

    def new_epoch(self, agent: int) -> None:
        """``agent``'s copy just died (or was replaced in place): any
        INV still in flight to it was issued against that dead epoch,
        and anything installed from now on carries a larger install
        sequence number.  The runtime's ``line.seq <= msg.seq`` guard
        makes the cache ack-and-ignore those stale INVs; mark them so
        the model can do the same."""
        for key in _CHANNELS:
            if key[1] != agent:
                continue
            self.chans[key] = tuple(
                replace(m, stale_epoch=True) if m.type == "INV" else m
                for m in self.chans[key])


def initial_world(max_ops: int) -> World:
    return World(cstate=["", ""], copy=[None, None], acks=[0, 0],
                 budget=[max_ops, max_ops], poisoned=[False, False],
                 home="", owner=None,
                 sharers=frozenset(), mem=FRESH, open_txn=None,
                 queue=(), chans={c: () for c in _CHANNELS},
                 early_wb=frozenset())


# ---------------------------------------------------------------------
# when-predicate evaluation
# ---------------------------------------------------------------------

def _when_ok(when: str, *, msg: Optional[Msg], world: World,
             agent: Optional[int], retain: bool,
             threshold: int) -> bool:
    """Evaluate one WHEN_VOCABULARY predicate in context."""
    sharers = world.sharers
    if when == "requester_is_sharer":
        return msg.requester in sharers
    if when == "requester_not_sharer":
        return msg.requester not in sharers
    if when == "other_sharers":
        return bool(sharers - {msg.requester})
    if when == "sole_sharer_retain":
        return sharers <= {msg.requester} and retain
    if when == "sole_sharer_no_retain":
        return sharers <= {msg.requester} and not retain
    if when == "other_sharers_remain":
        return bool(sharers - {msg.src})
    if when == "last_sharer":
        return not (sharers - {msg.src})
    if when == "from_owner":
        return msg.src == world.owner
    if when == "not_from_owner":
        return msg.src != world.owner
    if when == "msg_retain":
        return msg.retain
    if when == "msg_no_retain":
        return not msg.retain
    if when == "counter_below":
        counter = world.copy[agent][1] if world.copy[agent] else 0
        return counter + 1 < threshold
    if when == "counter_at_threshold":
        counter = world.copy[agent][1] if world.copy[agent] else 0
        return counter + 1 >= threshold
    if when == "requester_wrote_back":
        return msg.requester in world.early_wb
    if when == "requester_not_wrote_back":
        return msg.requester not in world.early_wb
    raise ValueError(f"unknown when-predicate {when!r}")


def _select_rows(rows: List[TransitionRow], **ctx) -> List[TransitionRow]:
    """Filter a (state, event) row set by their ``when`` predicates.
    Rows without a ``when`` always stay: if several remain, the
    explorer branches on all of them (sound over-approximation)."""
    return [r for r in rows
            if r.when is None or _when_ok(r.when, **ctx)]


# ---------------------------------------------------------------------
# the explorer
# ---------------------------------------------------------------------

class _Stuck(Exception):
    """A delivery hit a pair with no row: completeness violation."""

    def __init__(self, finding_kind: str, side: str, state: str,
                 event: str, detail: str) -> None:
        super().__init__(detail)
        self.finding_kind = finding_kind
        self.side = side
        self.state = state
        self.event = event
        self.detail = detail


@dataclass
class Step:
    """One labelled edge of a counterexample path."""

    label: str
    rows: Tuple[Tuple[str, TransitionRow], ...] = ()   # (side, row)

    def to_json(self, locate) -> dict:
        out = {"label": self.label}
        rows = []
        for side, row in self.rows:
            entry = {"side": side, "state": row.state,
                     "event": row.event,
                     "actions": list(row.actions)}
            if row.guard:
                entry["guard"] = row.guard
            loc = locate(side, row)
            if loc:
                entry["file"], entry["line"] = loc
            rows.append(entry)
        if rows:
            out["rows"] = rows
        return out


class SpecGraphExplorer:
    """BFS over the 2-agent x home product graph of one spec."""

    def __init__(self, spec: ProtocolSpec, *, retain: bool = True,
                 threshold: int = 2, max_ops: int = 3,
                 row_filter: Optional[Callable[[TransitionRow], bool]]
                 = None,
                 max_states: int = 400_000) -> None:
        self.spec = spec
        self.retain = retain
        self.threshold = threshold
        self.max_ops = max_ops
        self.row_filter = row_filter or (lambda row: True)
        self.max_states = max_states
        # exploration results
        self.visited_states: Dict[str, Set[str]] = {
            "cache": set(), "home": set()}
        self.visited_rows: Dict[str, Set[TransitionRow]] = {
            "cache": set(), "home": set()}
        self.parent: Dict[tuple, Tuple[Optional[tuple], Step]] = {}
        self.succs: Dict[tuple, List[tuple]] = {}
        self.quiescent: Set[tuple] = set()
        self.violations: List[Tuple[str, str, tuple,
                                    Tuple[Tuple[str, TransitionRow],
                                          ...]]] = []
        self.truncated = False

    # -- row lookup ---------------------------------------------------

    def _rows(self, side: SideSpec, state: str, event: str,
              **ctx) -> List[TransitionRow]:
        rows = [r for r in side.rows_for(state, event)
                if self.row_filter(r)]
        if not rows:
            imp = side.impossible_for(state, event)
            if imp is not None:
                raise _Stuck(
                    "impossible-reached", side.name, state, event,
                    f"({state}, {event}) was declared impossible "
                    f"({imp.reason!r}) but the spec graph reaches it")
            raise _Stuck(
                "missing-row", side.name, state, event,
                f"({state}, {event}) is reachable but has neither a "
                f"row nor an impossible entry")
        return _select_rows(rows, msg=ctx.get("msg"),
                            world=ctx["world"], agent=ctx.get("agent"),
                            retain=self.retain,
                            threshold=self.threshold)

    # -- cache side ---------------------------------------------------

    def _apply_cache_row(self, world: World, agent: int,
                         row: TransitionRow,
                         msg: Optional[Msg]) -> World:
        w = world.clone()
        state = w.cstate[agent]
        copy_tag = w.copy[agent][0] if w.copy[agent] else STALE
        counter = w.copy[agent][1] if w.copy[agent] else 0
        event = row.event
        poisoned_fill = False
        if event == "INV" and world.copy[agent] is None \
                and state not in self.spec.cache.stable:
            # A current-epoch INV reached us while our read fill is
            # still in flight.  The runtime records its sequence
            # number against the pending fill
            # (``PendingFill.inv_seq``): the fill will install, be
            # consumed exactly once, and the block dropped
            # (``_complete_fill``'s inv-overtook-fill path).
            w.poisoned[agent] = True
        for action in row.actions:
            if action.startswith("send:"):
                mtype = action[len("send:"):]
                if mtype in _TO_HOME:
                    dst, req = HOME, (msg.requester if msg is not None
                                      and mtype in ("SHARING_WB",
                                                    "DIRTY_TRANSFER",
                                                    "RECALL_REPLY",
                                                    "FWD_NACK")
                                      else agent)
                elif mtype in _TO_REQUESTER:
                    dst, req = msg.requester, msg.requester
                else:  # pragma: no cover - vocabulary check catches it
                    raise ValueError(
                        f"no route for cache send {mtype}")
                tag = copy_tag if mtype in _CARRIES_COPY else FRESH
                if mtype == "UPDATE":
                    tag = PENDING
                if dst == agent:
                    # an ack addressed to ourselves (we are the
                    # requester): collect it immediately, no hop
                    if mtype in ("INV_ACK", "UPD_ACK"):
                        w.acks[agent] -= 1
                        continue
                w.push(Msg(mtype, agent, dst, req, tag=tag))
            elif action in ("install", "fill"):
                if action == "fill" and w.poisoned[agent]:
                    # inv-overtook-fill: the data is consumed once
                    # (the waiting read completes) but the block is
                    # dropped, leaving the cache without the line
                    w.copy[agent] = None
                    poisoned_fill = True
                else:
                    if action == "install" \
                            or w.copy[agent] is not None:
                        # exclusive data ("install"): once the home
                        # granted us ownership it cannot fan another
                        # INV at us until we give it up, so every INV
                        # still in flight predates the grant.  A fill
                        # replacing a resident copy in place likewise
                        # outranks INVs aimed at the old epoch.
                        w.new_epoch(agent)
                    w.copy[agent] = (msg.tag, 0)
                w.poisoned[agent] = False
            elif action == "invalidate":
                w.copy[agent] = None
                w.new_epoch(agent)
            elif action == "apply_store":
                w.serialize_write()
                w.copy[agent] = (FRESH, 0)
            elif action == "finish_atomic":
                w.serialize_write()
                w.copy[agent] = (FRESH, 0)
            elif action == "cache_write":
                if "send:UPDATE" in row.actions:
                    # write-through (a local store, or a deferred
                    # store performed when the fill lands): locally
                    # latest, globally pending until the home
                    # serializes the UPDATE
                    w.copy[agent] = (PENDING, 0)
                elif event == "local:store":
                    # a store to a retained / owned line: the cache
                    # holds the only copy, so the write serializes
                    # in place (PU/CU "R", the update analog of M)
                    w.serialize_write()
                    w.copy[agent] = (FRESH, 0)
                elif event == "local:atomic":
                    w.serialize_write()
                    w.copy[agent] = (FRESH, 0)
                elif w.copy[agent] is not None \
                        and w.copy[agent][0] in (PENDING, FRESH):
                    # our own unserialized write stays newest; and a
                    # FRESH copy proves a serialization AFTER the
                    # incoming update was fanned (the demotion that
                    # staled the message would have staled the copy
                    # too) -- the runtime's store-buffer shadowing
                    # keeps the newer local value in both cases
                    pass
                else:
                    w.copy[agent] = (msg.tag, w.copy[agent][1]
                                     if w.copy[agent] else 0)
            elif action == "atomic_op":
                pass    # paired with cache_write (local) / mem_write
            elif action == "ack":
                w.acks[agent] -= 1
            elif action in ("retire_done", "evict") \
                    or action.startswith("cache:="):
                pass    # completion bookkeeping / state via next_state
            else:  # pragma: no cover - vocabulary check catches it
                raise ValueError(f"cache action {action!r} unhandled")
        # competitive counter: remote updates count, local ops reset.
        # An at-threshold row that KEEPS the copy resident (the seeded
        # cu-counter-stuck mutation) must still advance the counter so
        # the cu-counter check can see the line never drops.
        if row.when in ("counter_below", "counter_at_threshold") \
                and w.copy[agent] is not None:
            w.copy[agent] = (w.copy[agent][0], counter + 1)
        elif event.startswith(LOCAL_PREFIX) \
                and w.copy[agent] is not None:
            w.copy[agent] = (w.copy[agent][0], 0)
        if event == "local:evict":
            w.copy[agent] = None    # the victim line leaves the cache
            w.new_epoch(agent)
        w.cstate[agent] = row.next_state or state
        if poisoned_fill:
            # the block is gone: the runtime lands in the protocol's
            # invalid/initial cache state, not the row's next_state
            w.cstate[agent] = self.spec.cache.initial
        return w

    # -- home side ----------------------------------------------------

    def _grant_extras(self, mtype: str, fanned: int,
                      row: TransitionRow) -> dict:
        extras: dict = {}
        if mtype in _CARRIES_NACKS:
            extras["nacks"] = fanned
        if mtype == "WRITER_ACK":
            extras["retain"] = "dir:=DIRTY" in row.actions
        return extras

    def _apply_home_row(self, world: World, row: TransitionRow,
                        msg: Msg,
                        steps: List[Tuple[str, TransitionRow]]
                        ) -> List[World]:
        w = world.clone()
        event = row.event
        fanned = 0
        retried = False
        redispatch: List[Msg] = []
        # grants that carry an ack count are pushed after the whole
        # action list ran: a row may name the grant before its fanout
        # (PU's atomic row sends ATOMIC_REPLY, then UPD_PROP), and the
        # nacks field must count the fanout either way.  Deferral is
        # invisible to the product graph: the grant and the fanned
        # messages travel on different (src, dst) channels.
        deferred_grants: List[Tuple[str, str, int]] = []
        queue_only = (row.actions == ("begin_txn",))
        if queue_only:
            w.queue = w.queue + (msg,)
            w.home = row.next_state or w.home
            return [w]
        for action in row.actions:
            if action.startswith("send:"):
                mtype = action[len("send:"):]
                if mtype in _HOME_FANOUT:
                    targets = sorted(w.sharers - {msg.requester})
                    fanned = len(targets)
                    tag = FRESH if mtype == "UPD_PROP" else STALE
                    for t in targets:
                        # An INV fanned at a stale full-map bit is born
                        # stale: the target neither holds a copy nor
                        # has granted data in flight, so anything it
                        # installs later carries a larger sequence
                        # number than this INV and ignores it.
                        born_stale = (
                            mtype == "INV"
                            and w.copy[t] is None
                            and not any(
                                m.dst == t and m.type in _DATA_GRANTS
                                for c in _CHANNELS
                                for m in w.chans[c]))
                        w.push(Msg(mtype, HOME, t, msg.requester,
                                   tag=tag, stale_epoch=born_stale))
                elif mtype in _HOME_TO_REQUESTER:
                    tag = w.mem if mtype in _CARRIES_MEM else FRESH
                    if mtype in _CARRIES_NACKS:
                        deferred_grants.append(
                            (mtype, tag, msg.requester))
                    else:
                        w.push(Msg(mtype, HOME, msg.requester,
                                   msg.requester, tag=tag))
                    if mtype == "READ_REPLY":
                        w.sharers = w.sharers | {msg.requester}
                elif mtype in _HOME_TO_OWNER:
                    if w.owner is None:  # pragma: no cover
                        raise ValueError(
                            f"{mtype} forwarded with no recorded "
                            f"owner")
                    w.push(Msg(mtype, HOME, w.owner, msg.requester))
                else:  # pragma: no cover
                    raise ValueError(f"no route for home send {mtype}")
            elif action == "mem_write":
                if event == "UPDATE":
                    # the write-through serializes HERE: home order is
                    # the coherence order for update protocols
                    w.serialize_write()
                    w.mem = FRESH
                    src = msg.requester
                    if w.copy[src] is not None \
                            and w.copy[src][0] == PENDING:
                        w.copy[src] = (FRESH, w.copy[src][1])
                elif event == "ATOMIC_REQ":
                    w.mem = FRESH    # serialized by atomic_op below
                else:
                    w.mem = msg.tag
            elif action == "atomic_op":
                w.serialize_write()
                w.mem = FRESH
            elif action == "dir:=DIRTY":
                w.owner = msg.requester
                w.sharers = frozenset()
            elif action == "dir:=SHARED":
                w.owner = None
            elif action == "dir:=UNOWNED":
                w.owner = None
                w.sharers = frozenset()
            elif action == "begin_txn":
                if w.open_txn is None:
                    w.open_txn = msg
            elif action == "end_txn":
                w.open_txn = None
                if w.queue:
                    redispatch.append(w.queue[0])
                    w.queue = w.queue[1:]
            elif action == "retry_txn":
                if w.open_txn is not None:
                    redispatch.append(w.open_txn)
                    w.open_txn = None
                retried = True
            elif action == "note_early_wb":
                w.early_wb = w.early_wb | {msg.src}
            else:  # pragma: no cover
                raise ValueError(f"home action {action!r} unhandled")
        for mtype, tag, dst in deferred_grants:
            w.push(Msg(mtype, HOME, dst, dst, tag=tag,
                       **self._grant_extras(mtype, fanned, row)))
        # event-specific sharer bookkeeping (the imperative handlers
        # update the full-map mask; the actions list abstracts it)
        if event == "SHARING_WB":
            w.sharers = w.sharers | {msg.src, msg.requester}
        elif event == "RECALL_REPLY":
            w.sharers = w.sharers | {msg.src}
        elif event == "DROP_NOTICE":
            w.sharers = w.sharers - {msg.src}
        elif event == "DIRTY_TRANSFER":
            # the transfer consumes the requester's early-writeback
            # record whichever way it resolved
            w.early_wb = w.early_wb - {msg.requester}
        w.home = row.next_state or w.home
        if retried:
            # the runtime re-dispatches the open transaction against
            # the CURRENT directory entry, not the row's static next
            # state (which encodes only the writeback-race outcome):
            # a forward NACKed by a still-filling new owner retries
            # against a directory that is still DIRTY
            w.home = self._dir_state(w)
        worlds = [w]
        for queued in redispatch:
            worlds = [w2 for wv in worlds
                      for w2 in self._dispatch_home(wv, queued, steps)]
        return worlds

    def _dir_state(self, world: World) -> str:
        """The stable home state the directory bookkeeping implies
        (every spec names them U / S / D)."""
        if world.owner is not None:
            return "D"
        return "S" if world.sharers else "U"

    def _dispatch_home(self, world: World, msg: Msg,
                       steps: List[Tuple[str, TransitionRow]]
                       ) -> List[World]:
        rows = self._rows(self.spec.home, world.home, msg.type,
                          world=world, msg=msg)
        out: List[World] = []
        for row in rows:
            self.visited_rows["home"].add(row)
            steps.append(("home", row))
            out.extend(self._apply_home_row(world, row, msg, steps))
        return out

    def _dispatch_cache(self, world: World, agent: int, msg: Msg,
                        steps: List[Tuple[str, TransitionRow]]
                        ) -> List[World]:
        rows = self._rows(self.spec.cache, world.cstate[agent],
                          msg.type, world=world, msg=msg, agent=agent)
        out: List[World] = []
        for row in rows:
            self.visited_rows["cache"].add(row)
            steps.append(("cache", row))
            out.append(self._apply_cache_row(world, agent, row, msg))
        return out

    # -- successor generation -----------------------------------------

    def _initial(self) -> World:
        w = initial_world(self.max_ops)
        w.cstate = [self.spec.cache.initial, self.spec.cache.initial]
        w.home = self.spec.home.initial
        return w

    def _local_successors(self, world: World
                          ) -> List[Tuple[World, Step]]:
        out: List[Tuple[World, Step]] = []
        for agent in AGENTS:
            if world.budget[agent] <= 0:
                continue
            for event in sorted(
                    e for e in self.spec.cache.events
                    if e.startswith(LOCAL_PREFIX)):
                rows = [r for r in self.spec.cache.rows_for(
                            world.cstate[agent], event)
                        if self.row_filter(r)]
                # no row for a local stimulus = the processor stalls
                # at this transient; that is progress-by-waiting, not
                # a completeness hole (deliveries must still drain)
                rows = _select_rows(rows, msg=None, world=world,
                                    agent=agent, retain=self.retain,
                                    threshold=self.threshold)
                for row in rows:
                    succ = self._apply_cache_row(world, agent, row,
                                                 None)
                    # record coverage before the no-op check: a pure
                    # hit exercises its row even though the self-loop
                    # successor is skipped
                    self.visited_rows["cache"].add(row)
                    if succ.freeze() == world.freeze():
                        continue        # pure hit: a no-op self-loop
                    succ.budget[agent] -= 1
                    out.append((succ, Step(
                        f"agent {agent}: {event}",
                        (("cache", row),))))
        return out

    def _delivery_successors(self, world: World
                             ) -> List[Tuple[World, Step]]:
        out: List[Tuple[World, Step]] = []
        for chan in _CHANNELS:
            if not world.chans[chan]:
                continue
            msg = world.chans[chan][0]
            base = world.clone()
            base.chans[chan] = base.chans[chan][1:]
            steps: List[Tuple[str, TransitionRow]] = []
            if msg.type == "INV" and msg.stale_epoch:
                # the runtime's seq guard: an INV that targeted a
                # replaced copy is acked and otherwise ignored.  The
                # spec's pure-ack INV rows describe exactly this path,
                # so taking it covers them.
                for r in self.spec.cache.rows_for(
                        world.cstate[msg.dst], "INV"):
                    if "invalidate" not in r.actions \
                            and self.row_filter(r):
                        self.visited_rows["cache"].add(r)
                base.push(Msg("INV_ACK", msg.dst, msg.requester,
                              msg.requester))
                out.append((base, Step(
                    f"deliver {msg.label()} (stale epoch: "
                    f"ack-and-ignore)")))
                continue
            if msg.dst == HOME:
                succs = self._dispatch_home(base, msg, steps)
            else:
                succs = self._dispatch_cache(base, msg.dst, msg,
                                             steps)
                # a grant carrying fanned-out acks arms the counter
                if msg.nacks:
                    for s in succs:
                        s.acks[msg.dst] += msg.nacks
            for s in succs:
                out.append((s, Step(f"deliver {msg.label()}",
                                    tuple(steps))))
        return out

    def _successors(self, world: World) -> List[Tuple[World, Step]]:
        return (self._delivery_successors(world)
                + self._local_successors(world))

    # -- quiescence and the data checks --------------------------------

    def _is_quiescent(self, world: World) -> bool:
        return (world.cstate[0] in self.spec.cache.stable
                and world.cstate[1] in self.spec.cache.stable
                and world.home in self.spec.home.stable
                and world.open_txn is None
                and not world.queue
                and not world.in_flight()
                and world.acks == [0, 0])

    def _data_violations(self, world: World, frozen: tuple) -> None:
        if self._is_quiescent(world):
            for agent in AGENTS:
                cp = world.copy[agent]
                if cp is not None and cp[0] != FRESH:
                    self.violations.append((
                        "stale-copy",
                        f"agent {agent} rests with a {cp[0]}-tagged "
                        f"copy in {world.cstate[agent]}: a local read "
                        f"would return a value older than the last "
                        f"serialized write", frozen, ()))
            if world.owner is None and world.mem != FRESH:
                self.violations.append((
                    "stale-copy",
                    f"memory rests {world.mem}-tagged with no "
                    f"recorded owner: the next miss is served stale "
                    f"data", frozen, ()))
        for agent in AGENTS:
            cp = world.copy[agent]
            if cp is not None and cp[1] >= self.threshold:
                self.violations.append((
                    "cu-counter",
                    f"agent {agent} keeps a resident copy at the "
                    f"competitive threshold ({cp[1]} >= "
                    f"{self.threshold}): the line never drops and "
                    f"every remote write keeps paying the update",
                    frozen, ()))

    # -- the BFS driver ------------------------------------------------

    def run(self) -> None:
        start = self._initial()
        start_frozen = start.freeze()
        worlds: Dict[tuple, World] = {start_frozen: start}
        self.parent[start_frozen] = (None, Step("start"))
        order = [start_frozen]
        seen_violations: Set[tuple] = set()
        i = 0
        while i < len(order):
            frozen = order[i]
            i += 1
            world = worlds[frozen]
            self.visited_states["cache"].update(world.cstate)
            self.visited_states["home"].add(world.home)
            if self._is_quiescent(world):
                self.quiescent.add(frozen)
            n_before = len(self.violations)
            self._data_violations(world, frozen)
            try:
                succs = self._successors(world)
            except _Stuck as stuck:
                key = (stuck.finding_kind, stuck.side, stuck.state,
                       stuck.event)
                if key not in seen_violations:
                    seen_violations.add(key)
                    self.violations.append((
                        stuck.finding_kind, stuck.detail, frozen, ()))
                continue
            self.violations = (
                self.violations[:n_before]
                + [v for v in self.violations[n_before:]
                   if v[:2] not in seen_violations])
            for v in self.violations[n_before:]:
                seen_violations.add(v[:2])
            if not succs and not self._is_quiescent(world):
                self.violations.append((
                    "deadlock",
                    f"non-quiescent state has no successor: cache="
                    f"{tuple(world.cstate)} home={world.home} "
                    f"in-flight="
                    f"{[m.label() for c in _CHANNELS for m in world.chans[c]]} "
                    f"acks={tuple(world.acks)}", frozen, ()))
                continue
            kids = self.succs.setdefault(frozen, [])
            for succ, step in succs:
                sf = succ.freeze()
                kids.append(sf)
                if sf not in self.parent:
                    if len(worlds) >= self.max_states:
                        self.truncated = True
                        continue
                    worlds[sf] = succ
                    self.parent[sf] = (frozen, step)
                    order.append(sf)
        self._check_livelock(order)

    def _check_livelock(self, order: List[tuple]) -> None:
        """Reverse reachability from the quiescent set: every explored
        state must be able to drain back to rest."""
        if self.truncated:
            return              # frontier cut: reachability is partial
        rev: Dict[tuple, List[tuple]] = {}
        for src, kids in self.succs.items():
            for kid in kids:
                rev.setdefault(kid, []).append(src)
        can_rest: Set[tuple] = set(self.quiescent)
        stack = list(self.quiescent)
        while stack:
            node = stack.pop()
            for pred in rev.get(node, ()):
                if pred not in can_rest:
                    can_rest.add(pred)
                    stack.append(pred)
        reported = 0
        for frozen in order:
            if frozen not in can_rest and reported < 1:
                reported += 1
                self.violations.append((
                    "livelock",
                    "reachable state from which no quiescent state "
                    "is reachable: an in-flight transaction can "
                    "never complete", frozen, ()))

    # -- counterexample reconstruction ---------------------------------

    def path_to(self, frozen: tuple) -> List[Step]:
        steps: List[Step] = []
        node: Optional[tuple] = frozen
        while node is not None:
            parent, step = self.parent[node]
            steps.append(step)
            node = parent
        steps.reverse()
        return steps


# ---------------------------------------------------------------------
# file:line attribution back to the spec builder source
# ---------------------------------------------------------------------

class _RowLocator:
    """Best-effort mapping from a row back to the builder source line
    that wrote it (synthesized rows fall back to the stable-spec
    definition that induced them)."""

    def __init__(self, protocol: str) -> None:
        self._sources: List[Tuple[str, int, List[str]]] = []
        self._cache: Dict[Tuple[str, str, str], Optional[
            Tuple[str, int]]] = {}
        for fn in self._builders(protocol):
            try:
                lines, first = inspect.getsourcelines(fn)
                path = os.path.relpath(inspect.getsourcefile(fn))
            except (OSError, TypeError):     # pragma: no cover
                continue
            self._sources.append((path, first, lines))

    @staticmethod
    def _builders(protocol: str) -> list:
        from repro.protospec import tables
        if protocol == "wi":
            return [tables.wi_spec]
        if protocol in ("pu", "cu"):
            return [tables.pu_spec]
        if protocol == "hybrid":
            return [tables.wi_spec, tables.pu_spec]
        if protocol == "mesi":
            from repro.protospec.mesi import mesi_stable
            return [mesi_stable]
        return []                            # pragma: no cover

    def locate(self, side: str, row: TransitionRow
               ) -> Optional[Tuple[str, int]]:
        key = (side, row.state, row.event)
        if key in self._cache:
            return self._cache[key]
        state_pat = f'"{row.state}"'
        event_pat = f'"{row.event}"'
        best: Optional[Tuple[str, int]] = None
        for path, first, lines in self._sources:
            for off, line in enumerate(lines):
                if state_pat in line and event_pat in line:
                    best = (path, first + off)
                    break
            if best:
                break
        if best is None:
            for path, first, lines in self._sources:
                for off, line in enumerate(lines):
                    if event_pat in line:
                        best = (path, first + off)
                        break
                if best:
                    break
        if best is None and self._sources:
            path, first, _ = self._sources[0]
            best = (path, first)
        self._cache[key] = best
        return best


# ---------------------------------------------------------------------
# public API
# ---------------------------------------------------------------------

def explore_spec(spec: ProtocolSpec, *, retain: bool = True,
                 threshold: int = 2, max_ops: int = 3,
                 row_filter=None, max_states: int = 400_000
                 ) -> SpecGraphExplorer:
    """Run one exploration of ``spec`` and return the explorer with its
    visited sets, quiescent set, and violations filled in."""
    ex = SpecGraphExplorer(spec, retain=retain, threshold=threshold,
                           max_ops=max_ops, row_filter=row_filter,
                           max_states=max_states)
    ex.run()
    return ex


def _row_key(row: TransitionRow) -> tuple:
    # identity modulo the hybrid merge's guard relabelling
    return (row.state, row.event, row.actions, row.next_state,
            row.when, row.retry)


def _runs_for(protocol: str, spec: ProtocolSpec,
              threshold: int) -> List[dict]:
    """The run matrix: each entry explores one closed sub-machine."""
    if protocol == "wi" or protocol == "mesi":
        return [dict(label=protocol, retain=True)]
    if protocol in ("pu", "cu"):
        return [dict(label=f"{protocol} retain", retain=True),
                dict(label=f"{protocol} no-retain", retain=False)]
    if protocol == "hybrid":
        # project the merged table back onto its two closed
        # sub-machines: a block is managed by exactly one base
        # protocol, so the cross product is unreachable by design
        from repro.protospec.tables import cu_spec, wi_spec
        wi_keys = {_row_key(r) for side in (wi_spec().cache,
                                            wi_spec().home)
                   for r in side.rows}
        cu_keys = {_row_key(r) for side in (cu_spec().cache,
                                            cu_spec().home)
                   for r in side.rows}
        wi_filter = lambda r: _row_key(r) in wi_keys      # noqa: E731
        cu_filter = lambda r: _row_key(r) in cu_keys      # noqa: E731
        return [dict(label="hybrid/wi", retain=True,
                     row_filter=wi_filter),
                dict(label="hybrid/cu retain", retain=True,
                     row_filter=cu_filter),
                dict(label="hybrid/cu no-retain", retain=False,
                     row_filter=cu_filter)]
    raise ValueError(f"no run matrix for protocol {protocol!r}")


def check_spec_graph(protocol, spec: Optional[ProtocolSpec] = None,
                     *, max_ops: int = 3, threshold: int = 2,
                     max_states: int = 400_000
                     ) -> Tuple[List[Finding], dict]:
    """Exhaustively explore the spec graph of ``protocol``.

    Returns ``(findings, graph_json)``: spec-level safety/liveness
    violations (severity ``error``, each with a minimized
    counterexample) plus coverage gaps (severity ``warn``), and a
    JSON-able summary for CI artifacts."""
    proto = getattr(protocol, "value", protocol)
    if spec is None:
        from repro.protospec import get_spec
        spec = get_spec(protocol)
    locator = _RowLocator(proto)
    findings: List[Finding] = []
    runs_json: List[dict] = []
    counterexamples: List[dict] = []
    visited_states = {"cache": set(), "home": set()}
    visited_rows = {"cache": set(), "home": set()}
    seen: Set[Tuple[str, str]] = set()
    counters: Dict[str, int] = {}
    for run in _runs_for(proto, spec, threshold):
        ex = explore_spec(spec, retain=run["retain"],
                          threshold=threshold, max_ops=max_ops,
                          row_filter=run.get("row_filter"),
                          max_states=max_states)
        for side in ("cache", "home"):
            visited_states[side] |= ex.visited_states[side]
            visited_rows[side] |= ex.visited_rows[side]
        runs_json.append({"label": run["label"],
                          "states": len(ex.parent),
                          "quiescent": len(ex.quiescent),
                          "truncated": ex.truncated})
        for kind, detail, frozen, _rows in ex.violations:
            if (kind, detail) in seen:
                continue
            seen.add((kind, detail))
            n = counters[kind] = counters.get(kind, 0) + 1
            ident = f"{proto}/graph-{kind}/{n}"
            steps = ex.path_to(frozen)
            path_json = [s.to_json(locator.locate) for s in steps]
            counterexamples.append({"ident": ident, "kind": kind,
                                    "run": run["label"],
                                    "steps": path_json})
            file, line = "", 0
            state = event = side = ""
            for s in reversed(steps):
                if s.rows:
                    side, last = s.rows[-1]
                    state, event = last.state, last.event
                    loc = locator.locate(side, last)
                    if loc:
                        file, line = loc
                    break
            trace = " -> ".join(s.label for s in steps[1:]) or "initial"
            findings.append(Finding(
                check="spec-graph", ident=ident,
                detail=f"[{run['label']}] {detail}; shortest trace: "
                       f"{trace}",
                protocol=proto, side=side, state=state, event=event,
                file=file, line=line, severity="error"))
        if ex.truncated:
            findings.append(Finding(
                check="spec-graph",
                ident=f"{proto}/graph-truncated/{run['label']}",
                detail=f"[{run['label']}] exploration truncated at "
                       f"{max_states} states; results are partial",
                protocol=proto, severity="error"))
    # coverage: states or rows no interleaving ever exercised
    for side_name in ("cache", "home"):
        side = getattr(spec, side_name)
        for state in side.states:
            if state not in visited_states[side_name]:
                findings.append(Finding(
                    check="spec-graph",
                    ident=f"{proto}/graph-unreachable/{side_name}/"
                          f"{state}",
                    detail=f"{side_name} state {state!r} was never "
                           f"entered by any explored interleaving "
                           f"(max_ops={max_ops})",
                    protocol=proto, side=side_name, state=state,
                    severity="warn"))
        idents: Set[str] = set()
        for row in side.rows:
            if row in visited_rows[side_name]:
                continue
            ident = (f"{proto}/graph-dead-row/{side_name}/{row.state}/"
                     f"{row.event}")
            if row.when:
                ident += f"/{row.when}"
            while ident in idents:          # same pair, several rows
                ident += "+"
            idents.add(ident)
            loc = locator.locate(side_name, row)
            findings.append(Finding(
                check="spec-graph", ident=ident,
                detail=f"{side_name} row ({row.state}, {row.event}) "
                       f"never fired in any explored interleaving "
                       f"(max_ops={max_ops})",
                protocol=proto, side=side_name, state=row.state,
                event=row.event, file=loc[0] if loc else "",
                line=loc[1] if loc else 0, severity="warn"))
    graph_json = {
        "protocol": proto,
        "max_ops": max_ops,
        "threshold": threshold,
        "runs": runs_json,
        "coverage": {
            side: {"states_visited": sorted(visited_states[side]),
                   "rows_visited": len(visited_rows[side]),
                   "rows_total": len(getattr(spec, side).rows)}
            for side in ("cache", "home")},
        "findings": [f.to_json() for f in findings],
        "counterexamples": counterexamples,
    }
    return findings, graph_json


# ---------------------------------------------------------------------
# seeded spec-level mutations
# ---------------------------------------------------------------------

def _edit_rows(spec: ProtocolSpec, side_name: str, pred, edit
               ) -> ProtocolSpec:
    side = getattr(spec, side_name)
    hits = 0
    new_rows = []
    for row in side.rows:
        if pred(row):
            hits += 1
            new_rows.append(edit(row))
        else:
            new_rows.append(row)
    if not hits:
        raise ValueError(
            f"spec mutation matched no {side_name} rows")
    new_side = replace(side, rows=tuple(new_rows))
    return replace(spec, **{side_name: new_side})


def _drop_action(row: TransitionRow, action: str) -> TransitionRow:
    return replace(row, actions=tuple(
        a for a in row.actions if a != action))


def _mut_wi_drop_inv_ack(spec: ProtocolSpec) -> ProtocolSpec:
    return _edit_rows(
        spec, "cache",
        lambda r: r.event == "INV_ACK" and "ack" in r.actions,
        lambda r: _drop_action(r, "ack"))


def _mut_wi_skip_invalidation(spec: ProtocolSpec) -> ProtocolSpec:
    return _edit_rows(
        spec, "home",
        lambda r: r.event in ("RDEX_REQ", "UPGRADE_REQ")
        and "send:INV" in r.actions,
        lambda r: _drop_action(r, "send:INV"))


def _mut_pu_upd_prop_overwrite(spec: ProtocolSpec) -> ProtocolSpec:
    return _edit_rows(
        spec, "cache",
        lambda r: r.event == "UPD_PROP" and "cache_write" in r.actions,
        lambda r: _drop_action(r, "cache_write"))


def _mut_cu_counter_stuck(spec: ProtocolSpec) -> ProtocolSpec:
    return _edit_rows(
        spec, "cache",
        lambda r: r.event == "UPD_PROP"
        and r.when == "counter_at_threshold",
        lambda r: replace(r, actions=("cache_write", "send:UPD_ACK"),
                          next_state=r.state))


@dataclass(frozen=True)
class SpecMutation:
    """A seeded table-level bug the graph explorer must catch."""

    name: str
    protocol: str
    description: str
    expect: FrozenSet[str]      # acceptable violation kinds
    _apply: Callable[[ProtocolSpec], ProtocolSpec]

    def apply(self, spec: ProtocolSpec) -> ProtocolSpec:
        return self._apply(spec)


#: mirrors the four runtime mutations of repro.modelcheck.mutations
SPEC_MUTATIONS: Dict[str, SpecMutation] = {m.name: m for m in (
    SpecMutation(
        "wi-drop-inv-ack", "wi",
        "the requester never counts INV_ACKs: outstanding "
        "invalidation acks never drain",
        frozenset(("deadlock", "livelock")),
        _mut_wi_drop_inv_ack),
    SpecMutation(
        "wi-skip-invalidation", "wi",
        "the home grants exclusivity without invalidating sharers",
        frozenset(("stale-copy",)),
        _mut_wi_skip_invalidation),
    SpecMutation(
        "pu-upd-prop-overwrite", "pu",
        "sharers drop the propagated data on the floor",
        frozenset(("stale-copy",)),
        _mut_pu_upd_prop_overwrite),
    SpecMutation(
        "cu-counter-stuck", "cu",
        "the competitive drop never happens: the line stays resident "
        "at the threshold",
        frozenset(("cu-counter",)),
        _mut_cu_counter_stuck),
)}


def apply_spec_mutation(spec: ProtocolSpec, name: str) -> ProtocolSpec:
    try:
        mut = SPEC_MUTATIONS[name]
    except KeyError:
        raise KeyError(
            f"unknown spec mutation {name!r}; have "
            f"{', '.join(sorted(SPEC_MUTATIONS))}") from None
    return mut.apply(spec)
