"""Findings, suppressions, and the staticcheck report.

Every problem the analyzer or the conformance pass discovers is a
:class:`Finding` with a *stable identifier* -- a colon-joined path like
``completeness:wi:cache:M:READ_REPLY`` -- which is what the suppression
manifest keys on.  A suppression must carry a written reason; matching
findings stay in the report (marked suppressed) but do not affect the
exit code.  Suppressions that match nothing are themselves reported as
``stale-suppression`` findings so the manifest cannot rot.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

#: severity is informational only (the exit code counts every
#: unsuppressed finding); "error" findings are protocol holes, "warn"
#: findings are hygiene (stale suppressions, orphan message types)
SEVERITIES = ("error", "warn")


@dataclass
class Finding:
    check: str                  # completeness|reachability|ambiguity|...
    ident: str                  # stable suppression id
    detail: str
    protocol: str = ""
    side: str = ""
    state: str = ""
    event: str = ""
    file: str = ""
    line: int = 0
    severity: str = "error"
    suppressed: bool = False
    suppress_reason: str = ""

    def location(self) -> str:
        if self.file:
            return f"{self.file}:{self.line}"
        parts = [p for p in (self.protocol, self.side, self.state,
                             self.event) if p]
        return "/".join(parts)

    def to_json(self) -> dict:
        out = {"check": self.check, "id": self.ident,
               "detail": self.detail, "severity": self.severity}
        for key in ("protocol", "side", "state", "event", "file"):
            value = getattr(self, key)
            if value:
                out[key] = value
        if self.line:
            out["line"] = self.line
        if self.suppressed:
            out["suppressed"] = True
            out["suppress_reason"] = self.suppress_reason
        return out


class SuppressionError(ValueError):
    """A malformed suppression manifest."""


def load_suppressions(path: str) -> Dict[str, str]:
    """Read a manifest: ``{"suppressions": [{"id": ..., "reason": ...}]}``.
    Returns id -> reason.  Every entry must carry a non-empty reason."""
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    entries = data.get("suppressions")
    if not isinstance(entries, list):
        raise SuppressionError(
            f"{path}: expected a top-level 'suppressions' list")
    out: Dict[str, str] = {}
    for i, entry in enumerate(entries):
        ident = entry.get("id")
        reason = (entry.get("reason") or "").strip()
        if not ident or not reason:
            raise SuppressionError(
                f"{path}: suppression #{i} needs both 'id' and a "
                f"non-empty 'reason'")
        if ident in out:
            raise SuppressionError(
                f"{path}: duplicate suppression for {ident!r}")
        out[ident] = reason
    return out


class StaticCheckReport:
    """Collects findings, applies suppressions, renders text/JSON."""

    def __init__(self) -> None:
        self.findings: List[Finding] = []

    def add(self, finding: Finding) -> Finding:
        self.findings.append(finding)
        return finding

    def extend(self, findings: List[Finding]) -> None:
        self.findings.extend(findings)

    def apply_suppressions(self, table: Dict[str, str]) -> None:
        """Mark matching findings suppressed; report stale entries."""
        used = set()
        for f in self.findings:
            reason = table.get(f.ident)
            if reason is not None:
                f.suppressed = True
                f.suppress_reason = reason
                used.add(f.ident)
        for ident, reason in sorted(table.items()):
            if ident not in used:
                self.findings.append(Finding(
                    check="stale-suppression",
                    ident=f"stale-suppression:{ident}",
                    detail=f"suppression {ident!r} matches no finding "
                           f"(reason was: {reason})",
                    severity="warn"))

    # -- tallies -------------------------------------------------------

    @property
    def unsuppressed(self) -> List[Finding]:
        return [f for f in self.findings if not f.suppressed]

    def by_check(self, check: str) -> List[Finding]:
        return [f for f in self.findings if f.check == check]

    @property
    def ok(self) -> bool:
        return not self.unsuppressed

    # -- rendering -----------------------------------------------------

    def render(self) -> str:
        lines: List[str] = []
        if not self.findings:
            return "staticcheck: no findings"
        width = max(len(f.check) for f in self.findings)
        for f in self.findings:
            mark = "suppressed" if f.suppressed else f.severity.upper()
            lines.append(f"[{mark:>10}] {f.check:<{width}} "
                         f"{f.ident}")
            lines.append(f"             {f.detail}")
            if f.file:
                lines.append(f"             at {f.file}:{f.line}")
            if f.suppressed:
                lines.append(f"             suppressed: "
                             f"{f.suppress_reason}")
        sup = len(self.findings) - len(self.unsuppressed)
        lines.append(f"staticcheck: {len(self.unsuppressed)} finding(s), "
                     f"{sup} suppressed")
        return "\n".join(lines)

    def to_json(self, protocols: Optional[List[str]] = None) -> dict:
        return {
            "protocols": protocols or [],
            "findings": [f.to_json() for f in self.findings],
            "counts": {
                "total": len(self.findings),
                "unsuppressed": len(self.unsuppressed),
                "suppressed": (len(self.findings)
                               - len(self.unsuppressed)),
            },
            "ok": self.ok,
        }
