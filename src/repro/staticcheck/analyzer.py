"""Pure-static analysis of a :class:`~repro.protospec.ProtocolSpec`.

Nothing here runs the simulator; every check is a graph or table walk
over the declarative spec:

* **completeness** -- every ``(state, message-event)`` pair has a
  transition row or an explicit :class:`Impossible` declaration, so
  "thought about and ruled out" is distinguishable from "forgot";
* **contradiction** -- no pair has *both* a row and an impossible
  declaration;
* **reachability** -- every state is reachable from the side's reset
  state via declared transitions (dead states usually mean a deleted
  transition left half the machine behind);
* **ambiguity** -- no two rows match the same ``(state, event)`` with
  the same guard (wildcard rows are expanded over all states);
* **progress** -- retry/NACK rows that form a cycle (including
  self-loops) must carry a written ``fairness`` justification for why
  the retry terminates;
* **vocabulary** -- every :class:`MsgType` is either used by the spec
  (as an event or a ``send:`` action) or listed in
  ``unused_messages`` with a reason, and never both;
* **routing** -- every message event some side receives is sent by at
  least one row, and every ``send:`` target is received by some side
  (no dead-letter messages).

Local (``local:*``) stimuli are excluded from completeness: a
processor can always reference memory, but which stimuli are
meaningful per state is documentation, not protocol surface.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.network.messages import MsgType
from repro.protospec.model import (
    ANY_STATE, LOCAL_PREFIX, ProtocolSpec, SideSpec,
)
from repro.staticcheck.report import Finding

#: analyzer check names, in report order
CHECKS = ("completeness", "contradiction", "reachability", "ambiguity",
          "progress", "vocabulary", "routing")


def _expand(side: SideSpec, state: str) -> Tuple[str, ...]:
    return side.states if state == ANY_STATE else (state,)


def _check_completeness(spec: ProtocolSpec, side: SideSpec,
                        out: List[Finding]) -> None:
    covered: Set[Tuple[str, str]] = set()
    for row in side.rows:
        for s in _expand(side, row.state):
            covered.add((s, row.event))
    declared_imp = {(i.state, i.event) for i in side.impossible}
    for event in side.message_events():
        for state in side.states:
            pair = (state, event)
            if pair in covered:
                if pair in declared_imp:
                    out.append(Finding(
                        check="contradiction",
                        ident=f"contradiction:{spec.protocol}:"
                              f"{side.name}:{state}:{event}",
                        detail=f"({state}, {event}) has transition "
                               f"row(s) AND an impossible declaration "
                               f"-- one of them is wrong",
                        protocol=spec.protocol, side=side.name,
                        state=state, event=event))
                continue
            if pair in declared_imp:
                continue
            out.append(Finding(
                check="completeness",
                ident=f"completeness:{spec.protocol}:{side.name}:"
                      f"{state}:{event}",
                detail=f"({state}, {event}) has no transition row and "
                       f"no impossible declaration: a message the "
                       f"handler would hit this hole on",
                protocol=spec.protocol, side=side.name, state=state,
                event=event))


def _check_reachability(spec: ProtocolSpec, side: SideSpec,
                        out: List[Finding]) -> None:
    succ: Dict[str, Set[str]] = {s: set() for s in side.states}
    for row in side.rows:
        for s in _expand(side, row.state):
            succ[s].add(row.next_state if row.next_state is not None
                        else s)
    seen = {side.initial}
    frontier = [side.initial]
    while frontier:
        nxt = frontier.pop()
        for s in succ.get(nxt, ()):
            if s not in seen:
                seen.add(s)
                frontier.append(s)
    for state in side.states:
        if state in seen:
            continue
        dead_rows = sum(1 for r in side.rows
                        if state in _expand(side, r.state))
        out.append(Finding(
            check="reachability",
            ident=f"reachability:{spec.protocol}:{side.name}:{state}",
            detail=f"state {state} is unreachable from reset "
                   f"({side.initial}); its {dead_rows} row(s) can "
                   f"never fire",
            protocol=spec.protocol, side=side.name, state=state))


def _check_ambiguity(spec: ProtocolSpec, side: SideSpec,
                     out: List[Finding]) -> None:
    by_key: Dict[Tuple[str, str, str], int] = {}
    for row in side.rows:
        for s in _expand(side, row.state):
            key = (s, row.event, row.guard or "")
            by_key[key] = by_key.get(key, 0) + 1
    flagged: Set[Tuple[str, str]] = set()
    for (state, event, guard), n in sorted(by_key.items()):
        if n < 2 or (state, event) in flagged:
            continue
        flagged.add((state, event))
        gtxt = f"guard {guard!r}" if guard else "no guard"
        out.append(Finding(
            check="ambiguity",
            ident=f"ambiguity:{spec.protocol}:{side.name}:{state}:"
                  f"{event}",
            detail=f"{n} rows match ({state}, {event}) with {gtxt}; "
                   f"the dispatch is nondeterministic",
            protocol=spec.protocol, side=side.name, state=state,
            event=event))


def _check_progress(spec: ProtocolSpec, side: SideSpec,
                    out: List[Finding]) -> None:
    """Retry edges that sit on a cycle (a NACK loop) need a written
    fairness argument for why the loop terminates."""
    edges: List[Tuple[str, str, object]] = []
    succ: Dict[str, Set[str]] = {}
    for row in side.rows:
        if not row.retry:
            continue
        for s in _expand(side, row.state):
            dst = row.next_state if row.next_state is not None else s
            edges.append((s, dst, row))
            succ.setdefault(s, set()).add(dst)

    def reaches(src: str, dst: str) -> bool:
        seen, frontier = {src}, [src]
        while frontier:
            cur = frontier.pop()
            if cur == dst:
                return True
            for nxt in succ.get(cur, ()):
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        return False

    flagged: Set[Tuple[str, str]] = set()
    for src, dst, row in edges:
        if row.fairness:
            continue
        # the edge is on a retry-only cycle iff dst reaches src
        if not reaches(dst, src):
            continue
        key = (src, row.event)
        if key in flagged:
            continue
        flagged.add(key)
        out.append(Finding(
            check="progress",
            ident=f"progress:{spec.protocol}:{side.name}:{src}:"
                  f"{row.event}",
            detail=f"retry row ({src}, {row.event}) -> {dst} closes a "
                   f"retry cycle with no fairness justification: "
                   f"nothing documented guarantees the retry storm "
                   f"terminates",
            protocol=spec.protocol, side=side.name, state=src,
            event=row.event))


def _check_vocabulary(spec: ProtocolSpec, out: List[Finding]) -> None:
    used = spec.used_messages()
    unused = {name for name, _ in spec.unused_messages}
    for name in sorted(used & unused):
        out.append(Finding(
            check="vocabulary",
            ident=f"vocabulary:{spec.protocol}:contradiction:{name}",
            detail=f"{name} is declared unused but the spec sends or "
                   f"receives it",
            protocol=spec.protocol, event=name))
    for m in MsgType:
        if m.name in used or m.name in unused:
            continue
        out.append(Finding(
            check="vocabulary",
            ident=f"vocabulary:{spec.protocol}:orphan:{m.name}",
            detail=f"{m.name} is neither used by the {spec.protocol} "
                   f"spec nor declared unused with a reason",
            protocol=spec.protocol, event=m.name))


def _check_routing(spec: ProtocolSpec, out: List[Finding]) -> None:
    receivable = {e for side in spec.sides
                  for e in side.message_events()}
    sent: Set[str] = set()
    for side in spec.sides:
        for row in side.rows:
            for action in row.actions:
                if action.startswith("send:"):
                    sent.add(action[len("send:"):])
    for name in sorted(sent - receivable):
        out.append(Finding(
            check="routing",
            ident=f"routing:{spec.protocol}:dead-letter:{name}",
            detail=f"some row sends {name} but neither side lists it "
                   f"as a receivable event",
            protocol=spec.protocol, event=name))
    for name in sorted(receivable - sent):
        out.append(Finding(
            check="routing",
            ident=f"routing:{spec.protocol}:never-sent:{name}",
            detail=f"{name} is in a side's event alphabet but no row "
                   f"ever sends it; the transitions for it can never "
                   f"fire",
            protocol=spec.protocol, event=name))


def analyze_spec(spec: ProtocolSpec) -> List[Finding]:
    """Run every static check against one protocol spec."""
    out: List[Finding] = []
    for side in spec.sides:
        _check_completeness(spec, side, out)   # + contradiction
        _check_reachability(spec, side, out)
        _check_ambiguity(spec, side, out)
        _check_progress(spec, side, out)
    _check_vocabulary(spec, out)
    _check_routing(spec, out)
    return out
