"""Static protocol analysis: no simulation, just the spec and the AST.

Three layers:

* :mod:`repro.staticcheck.analyzer` -- completeness, reachability,
  ambiguity, progress, vocabulary and routing checks over a
  :class:`~repro.protospec.ProtocolSpec`;
* :mod:`repro.staticcheck.conformance` -- AST diff of the imperative
  handlers in :mod:`repro.protocols` against the spec tables;
* :mod:`repro.staticcheck.graph` -- exhaustive exploration of the
  cache x home product graph over all message reorderings: deadlock /
  livelock / staleness / dead-row checks with minimized, file:line
  attributed counterexample paths;
* :mod:`repro.staticcheck.report` -- findings, the suppression
  manifest, and text/JSON rendering.

Driven by ``python -m repro.experiments staticcheck``.
"""

from __future__ import annotations

import os

from repro.staticcheck.analyzer import CHECKS, analyze_spec
from repro.staticcheck.conformance import (
    ExtractionError, check_conformance, check_dispatch_tables,
    handler_effects,
)
from repro.staticcheck.graph import (
    SPEC_MUTATIONS, SpecGraphExplorer, SpecMutation,
    apply_spec_mutation, check_spec_graph, explore_spec,
)
from repro.staticcheck.report import (
    Finding, StaticCheckReport, SuppressionError, load_suppressions,
)

#: the packaged (default) suppression manifest
DEFAULT_SUPPRESSIONS = os.path.join(os.path.dirname(__file__),
                                    "suppressions.json")

__all__ = [
    "CHECKS", "analyze_spec", "check_conformance",
    "check_dispatch_tables", "handler_effects",
    "ExtractionError", "Finding", "StaticCheckReport",
    "SuppressionError", "load_suppressions", "DEFAULT_SUPPRESSIONS",
    "SPEC_MUTATIONS", "SpecGraphExplorer", "SpecMutation",
    "apply_spec_mutation", "check_spec_graph", "explore_spec",
]
