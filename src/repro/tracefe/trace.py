"""Trace records, (de)serialization, replay, and capture."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.config import MachineConfig
from repro.isa.ops import (
    Compute, Fence, FetchAdd, Flush, Op, Read, Write,
)
from repro.runtime import Machine, RunResult


class TraceOp(enum.Enum):
    READ = "R"
    WRITE = "W"
    ATOMIC_ADD = "A"
    COMPUTE = "C"
    FLUSH = "F"
    FENCE = "B"


@dataclass(frozen=True)
class TraceRecord:
    """One trace event on one processor."""

    node: int
    op: TraceOp
    addr: int = 0
    arg: int = 0

    def format(self) -> str:
        if self.op is TraceOp.COMPUTE:
            return f"{self.node} C {self.arg}"
        if self.op is TraceOp.FENCE:
            return f"{self.node} B"
        base = f"{self.node} {self.op.value} {self.addr:#x}"
        if self.op in (TraceOp.WRITE, TraceOp.ATOMIC_ADD):
            base += f" {self.arg}"
        return base

    def to_jsonable(self) -> Dict[str, Any]:
        return {"node": self.node, "op": self.op.value,
                "addr": self.addr, "arg": self.arg}

    @classmethod
    def from_jsonable(cls, data: Dict[str, Any]) -> "TraceRecord":
        return cls(node=int(data["node"]), op=TraceOp(data["op"]),
                   addr=int(data.get("addr", 0)),
                   arg=int(data.get("arg", 0)))


def trace_to_jsonable(records: Iterable[TraceRecord]
                      ) -> List[Dict[str, Any]]:
    """JSON-ready list form of a trace (the service's wire shape)."""
    return [rec.to_jsonable() for rec in records]


def trace_from_jsonable(data: Iterable[Dict[str, Any]]
                        ) -> List[TraceRecord]:
    """Inverse of :func:`trace_to_jsonable`."""
    return [TraceRecord.from_jsonable(item) for item in data]


def format_trace(records: Iterable[TraceRecord]) -> str:
    """Serialize records to the text trace format."""
    return "\n".join(r.format() for r in records) + "\n"


def parse_trace(text: str) -> List[TraceRecord]:
    """Parse the text trace format (comments with '#', blank lines ok)."""
    out: List[TraceRecord] = []
    for lineno, raw in enumerate(text.splitlines(), 1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        try:
            node = int(parts[0])
            op = TraceOp(parts[1].upper())
            if op is TraceOp.COMPUTE:
                out.append(TraceRecord(node, op, arg=int(parts[2], 0)))
            elif op is TraceOp.FENCE:
                out.append(TraceRecord(node, op))
            else:
                addr = int(parts[2], 0)
                arg = int(parts[3], 0) if len(parts) > 3 else 0
                out.append(TraceRecord(node, op, addr, arg))
        except (IndexError, ValueError, KeyError) as exc:
            raise ValueError(
                f"bad trace line {lineno}: {raw!r} ({exc})") from None
    return out


def split_by_node(records: Iterable[TraceRecord]
                  ) -> Dict[int, List[TraceRecord]]:
    per_node: Dict[int, List[TraceRecord]] = {}
    for rec in records:
        per_node.setdefault(rec.node, []).append(rec)
    return per_node


def trace_program(records: List[TraceRecord]):
    """Turn one processor's records into a thread program."""
    values: List[Any] = []
    for rec in records:
        if rec.op is TraceOp.READ:
            values.append((yield Read(rec.addr)))
        elif rec.op is TraceOp.WRITE:
            yield Write(rec.addr, rec.arg)
        elif rec.op is TraceOp.ATOMIC_ADD:
            values.append((yield FetchAdd(rec.addr, rec.arg or 1)))
        elif rec.op is TraceOp.COMPUTE:
            yield Compute(rec.arg)
        elif rec.op is TraceOp.FLUSH:
            yield Flush(rec.addr)
        elif rec.op is TraceOp.FENCE:
            yield Fence()
    return values


def run_trace(config: MachineConfig, records: List[TraceRecord],
              max_events: Optional[int] = None
              ) -> Tuple[RunResult, Machine]:
    """Replay a trace on a fresh machine.

    Trace addresses are used verbatim (block interleaving determines
    homes); idle nodes get empty programs.  Returns the run result and
    the machine (for post-run inspection).
    """
    machine = Machine(config, max_events=max_events)
    per_node = split_by_node(records)
    bad = [n for n in per_node if not 0 <= n < config.num_procs]
    if bad:
        raise ValueError(f"trace references nodes {bad} outside the "
                         f"{config.num_procs}-processor machine")
    for node in range(config.num_procs):
        machine.spawn(node, trace_program(per_node.get(node, [])))
    result = machine.run()
    return result, machine


def capture_program(node: int, program) :
    """Wrap a thread program, recording its operation stream.

    Returns ``(wrapped_program, records)``: drive the wrapped program
    as usual; ``records`` fills up with the trace as it executes.
    Reads/atomics record the address only (their returned values depend
    on the machine, not the trace).  Unsupported ops (SpinUntil, Fork,
    CallHook, sub-word writes) raise: traces are for plain reference
    streams.
    """
    records: List[TraceRecord] = []

    def wrapped():
        gen = program
        value = None
        while True:
            try:
                op = gen.send(value)
            except StopIteration:
                return
            if isinstance(op, Read):
                records.append(TraceRecord(node, TraceOp.READ, op.addr))
            elif isinstance(op, Write):
                if op.mask is not None:
                    raise ValueError("cannot capture sub-word writes")
                records.append(TraceRecord(node, TraceOp.WRITE, op.addr,
                                           op.value))
            elif isinstance(op, FetchAdd):
                records.append(TraceRecord(node, TraceOp.ATOMIC_ADD,
                                           op.addr, op.delta))
            elif isinstance(op, Compute):
                records.append(TraceRecord(node, TraceOp.COMPUTE,
                                           arg=op.cycles))
            elif isinstance(op, Flush):
                records.append(TraceRecord(node, TraceOp.FLUSH, op.addr))
            elif isinstance(op, Fence):
                records.append(TraceRecord(node, TraceOp.FENCE))
            else:
                raise ValueError(
                    f"cannot capture {type(op).__name__} into a trace")
            value = yield op

    return wrapped(), records
