"""Trace-driven front end.

The paper's front-end (MINT) is execution-driven; this package adds the
classic alternative: replaying per-processor *address traces* through
the same back-end.  Useful for feeding reference streams captured
elsewhere (or from a previous simulation) and for regression-testing
the memory system against fixed inputs.

A trace is a sequence of records per processor::

    # node op addr [arg]
    0 R 0x40
    0 W 0x40 7
    1 A 0x80 1        # fetch_and_add
    1 C 50            # compute cycles
    0 F 0x40          # block flush
    0 B               # fence (barrier between its own accesses)

See :func:`parse_trace` / :func:`format_trace` for the file format and
:func:`run_trace` for end-to-end execution.
"""

from repro.tracefe.trace import (
    TraceOp, TraceRecord, capture_program, format_trace, parse_trace,
    run_trace, trace_from_jsonable, trace_program, trace_to_jsonable,
)

__all__ = [
    "TraceOp", "TraceRecord", "capture_program", "format_trace",
    "parse_trace", "run_trace", "trace_program",
    "trace_to_jsonable", "trace_from_jsonable",
]
