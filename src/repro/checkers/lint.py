"""Static lint pass over ISA op streams (no machine required).

Thread programs are Python generators yielding :mod:`repro.isa.ops`
operations, so their op streams can be *recorded* without running the
simulated machine: a tiny functional interpreter drives the generators
round-robin against a flat sequentially-consistent memory (every store
is immediately visible), resolving ``SpinUntil`` predicates against
that memory and skipping kernel hooks.  Timing disappears; the streams
keep program order per node, which is all the rules need.

Rules (per run of :func:`run_lint`):

``lint:missing-release-fence`` (L1)
    A store to a registered release word (lock handoff) with plain
    writes since the last acquire and **no** ``Fence`` (or atomic,
    which drains the write buffer) in between: the critical section's
    stores can escape the lock.

``lint:unshared-flush`` (L2)
    A ``Flush`` of a block no *other* node ever accesses.  The flush
    buys nothing and costs a miss (skipped on single-node streams).

``lint:write-escapes-release`` (L3)
    A plain store issued *after* the fence that guards a release store:
    it is not covered by the fence and can still be buffered when the
    lock is handed off.

``lint:spin-never-satisfied`` (L4)
    A ``SpinUntil`` whose predicate no store in the whole recorded run
    ever satisfies -- the thread would spin forever even under
    instantly-visible memory.

``lint:double-acquire`` (L5)
    A node acquires the same lock twice (two ``spin-ok`` events on the
    same release word) with no release action in between.  A release
    action is a plain store by that node to any release word (ticket
    handoff, flag locks) or an atomic by that node on a sync or release
    word (MCS tail-CAS, test-and-set loops).

``lint:acquire-without-release`` (L6)
    A node's *last* acquire of a lock is never followed by any release
    action by that node, nor by any store to the acquired word by
    anyone (lock handoff on the node's behalf): the critical section
    never ends and every later contender would hang.

Violations carry node and word/block; there are no cycles (nothing
ran).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.checkers.violations import CheckerReport
from repro.isa.ops import (
    CallHook, Compute, Fence, Flush, FlushCache, Fork, Join, Read,
    SpinUntil, Write, _AtomicOp, apply_atomic, merge_word,
)


@dataclass
class LintEvent:
    """One recorded operation of one node's stream."""

    node: int
    kind: str                 # read|write|atomic|fence|flush|flush-all|
                              # spin-start|spin-ok
    word: Optional[int] = None
    block: Optional[int] = None


class _RecordHandle:
    """Stand-in join handle for ``Fork`` during recording."""

    __slots__ = ("thread",)

    def __init__(self, thread: "_Thread") -> None:
        self.thread = thread


class _Thread:
    __slots__ = ("node", "gen", "send", "state", "spin", "join", "done")

    def __init__(self, node: int, gen) -> None:
        self.node = node
        self.gen = gen
        self.send: Any = None
        self.state = "ready"       # ready | spin | join | done
        self.spin: Optional[Tuple[int, Any]] = None   # (addr, predicate)
        self.join: Optional[_Thread] = None
        self.done = False


class LintFuelExhausted(RuntimeError):
    """The recorder's op budget ran out (runaway program)."""


def record_streams(config, programs, fuel: int = 1_000_000,
                   initial: Optional[Dict[int, Any]] = None,
                   ) -> Tuple[List[LintEvent], List[Tuple[int, int]]]:
    """Drive ``programs`` (iterable of ``(node, generator)``) to
    completion against a flat memory.

    ``initial`` pre-seeds the flat memory (address -> value), mirroring
    :attr:`repro.runtime.memory_map.MemoryMap.initial_values` -- without
    it a sense-reversing barrier's counter would start at 0 and its
    spins could never be satisfied.

    Returns ``(events, blocked)`` where ``events`` is the merged
    per-node op stream (program order preserved within each node) and
    ``blocked`` lists ``(node, word)`` for spins still unsatisfied when
    no thread can make progress.
    """
    mem: Dict[int, Any] = {config.word_of(a): v
                           for a, v in (initial or {}).items()}
    events: List[LintEvent] = []
    threads: List[_Thread] = [_Thread(n, g) for n, g in programs]

    def read_word(addr: int) -> Any:
        return mem.get(config.word_of(addr), 0)

    def step(t: _Thread) -> bool:
        """Run ``t`` until it blocks or finishes; True if it advanced."""
        nonlocal fuel
        advanced = False
        while t.state == "ready":
            if fuel <= 0:
                raise LintFuelExhausted(
                    f"lint recorder exceeded its op budget at node "
                    f"{t.node} (infinite loop in the program?)")
            fuel -= 1
            try:
                op = t.gen.send(t.send)
            except StopIteration:
                t.state, t.done = "done", True
                return True
            advanced = True
            t.send = None
            cls = op.__class__
            if cls is Read:
                word = config.word_of(op.addr)
                events.append(LintEvent(t.node, "read", word,
                                        config.block_of(op.addr)))
                t.send = read_word(op.addr)
            elif cls is Write:
                word = config.word_of(op.addr)
                events.append(LintEvent(t.node, "write", word,
                                        config.block_of(op.addr)))
                mem[word] = merge_word(mem.get(word), op.value, op.mask)
            elif isinstance(op, _AtomicOp):
                word = config.word_of(op.addr)
                events.append(LintEvent(t.node, "atomic", word,
                                        config.block_of(op.addr)))
                new, result = apply_atomic(op.opname, mem.get(word),
                                           op.operand)
                mem[word] = new
                t.send = result
            elif cls is Fence:
                events.append(LintEvent(t.node, "fence"))
            elif cls is SpinUntil:
                word = config.word_of(op.addr)
                events.append(LintEvent(t.node, "spin-start", word,
                                        config.block_of(op.addr)))
                value = read_word(op.addr)
                if op.predicate(value):
                    events.append(LintEvent(t.node, "spin-ok", word,
                                            config.block_of(op.addr)))
                    t.send = value
                else:
                    t.state = "spin"
                    t.spin = (op.addr, op.predicate)
            elif cls is Compute:
                pass
            elif cls is Flush:
                events.append(LintEvent(
                    t.node, "flush", config.word_of(op.addr),
                    config.block_of(op.addr)))
            elif cls is FlushCache:
                events.append(LintEvent(t.node, "flush-all"))
            elif cls is CallHook:
                # kernel hooks (ideal sync) cannot run without a
                # machine; treat as an immediate no-op
                pass
            elif cls is Fork:
                child = _Thread(op.node, op.program)
                threads.append(child)
                t.send = _RecordHandle(child)
            elif cls is Join:
                target = op.handle
                if isinstance(target, _RecordHandle):
                    target = target.thread
                if getattr(target, "done", False):
                    pass
                else:
                    t.state = "join"
                    t.join = target
            else:
                raise TypeError(f"thread yielded a non-Op: {op!r}")
        return advanced

    while True:
        progress = False
        for t in list(threads):
            if t.state == "spin":
                addr, pred = t.spin
                value = read_word(addr)
                if pred(value):
                    word = config.word_of(addr)
                    events.append(LintEvent(t.node, "spin-ok", word,
                                            config.block_of(addr)))
                    t.state, t.spin, t.send = "ready", None, value
            elif t.state == "join":
                if t.join.done:
                    t.state, t.join = "ready", None
            if t.state == "ready":
                if step(t):
                    progress = True
        if all(t.state == "done" for t in threads):
            break
        if not progress:
            break                  # blocked: reported as L4 / deadlock

    blocked = [(t.node, config.word_of(t.spin[0]))
               for t in threads if t.state == "spin"]
    return events, blocked


# ----------------------------------------------------------------------
# rules
# ----------------------------------------------------------------------

def _label(memmap, word: int) -> str:
    cfg = memmap.config
    for al in memmap.allocations:
        if al.addr <= word < al.addr + max(al.nbytes, cfg.word_size_bytes):
            return f" ({al.label})" if al.label else ""
    return ""


def run_lint(memmap, programs, fuel: int = 1_000_000,
             report: Optional[CheckerReport] = None) -> CheckerReport:
    """Record ``programs`` and apply all lint rules.

    ``memmap`` supplies the sync/release word registry (build the
    machine, let the workload allocate its locks and barriers, and pass
    ``machine.memmap`` with fresh program generators -- the machine
    itself never runs).
    """
    config = memmap.config
    if report is None:
        report = CheckerReport()
    events, blocked = record_streams(config, list(programs), fuel=fuel,
                                     initial=memmap.initial_values)

    nodes = {ev.node for ev in events}
    sync = memmap.sync_words
    releases = memmap.release_words

    # --- per-node release-discipline scan (L1, L3) --------------------
    pending: Dict[int, List[int]] = {}       # plain writes since fence
    fenced: Dict[int, bool] = {}             # fence since last acquire
    for ev in events:
        n = ev.node
        if ev.kind in ("fence", "atomic", "flush-all"):
            pending[n] = []
            fenced[n] = True
            continue
        if ev.kind == "spin-ok":
            # acquire: a new region begins.  (A plain *read* of a sync
            # word is deliberately not an acquire here: the ticket
            # release reads now_serving right before the handoff store,
            # and treating that read as an acquire would mask a missing
            # fence.  Every lock in the library acquires via SpinUntil.)
            pending[n] = []
            fenced[n] = False
            continue
        if ev.kind != "write":
            continue
        if ev.word in releases:
            writes = pending.get(n, [])
            if writes:
                words = ", ".join(f"{w:#x}{_label(memmap, w)}"
                                  for w in sorted(set(writes)))
                if not fenced.get(n, False):
                    report.violation(
                        "lint", "missing-release-fence",
                        f"release store{_label(memmap, ev.word)} with "
                        f"no Fence since the last acquire; unfenced "
                        f"write(s) to {words} can escape the lock",
                        node=n, word=ev.word, block=ev.block)
                else:
                    report.violation(
                        "lint", "write-escapes-release",
                        f"plain write(s) to {words} issued after the "
                        f"fence guarding the release "
                        f"store{_label(memmap, ev.word)}",
                        node=n, word=ev.word, block=ev.block)
            pending[n] = []
        elif ev.word not in sync:
            pending.setdefault(n, []).append(ev.word)

    # --- unshared flush (L2) ------------------------------------------
    if len(nodes) > 1:
        accessors: Dict[int, Set[int]] = {}
        for ev in events:
            if ev.block is not None and ev.kind != "flush":
                accessors.setdefault(ev.block, set()).add(ev.node)
        for ev in events:
            if ev.kind != "flush":
                continue
            others = accessors.get(ev.block, set()) - {ev.node}
            if not others:
                report.violation(
                    "lint", "unshared-flush",
                    f"Flush of a block no other node ever accesses"
                    f"{_label(memmap, ev.word)}: pure overhead",
                    node=ev.node, word=ev.word, block=ev.block)

    # --- lock-discipline scan (L5, L6) --------------------------------
    # acquire = spin-ok on a release word; release action = plain store
    # by the holder to any release word (ticket/flag handoff) or an
    # atomic by the holder on a sync/release word (MCS tail-CAS,
    # test-and-set).  In the recorder's sequential memory an acquire
    # spin succeeds exactly when the lock is actually free, so neither
    # rule fires on healthy retry loops.

    def _is_release_action(ev: LintEvent) -> bool:
        if ev.kind == "write":
            return ev.word in releases
        if ev.kind == "atomic":
            return ev.word in sync or ev.word in releases
        return False

    held: Dict[int, Set[int]] = {}
    last_acq: Dict[Tuple[int, int], int] = {}   # (node, word) -> index
    for i, ev in enumerate(events):
        n = ev.node
        if ev.kind == "spin-ok" and ev.word in releases:
            if ev.word in held.setdefault(n, set()):
                report.violation(
                    "lint", "double-acquire",
                    f"node {n} re-acquires lock word "
                    f"{ev.word:#x}{_label(memmap, ev.word)} with no "
                    f"release action since its previous acquire",
                    node=n, word=ev.word, block=ev.block)
            held[n].add(ev.word)
            last_acq[(n, ev.word)] = i
        elif _is_release_action(ev):
            held.get(n, set()).clear()
    for (n, w), i in last_acq.items():
        rest = events[i + 1:]
        if any(ev.node == n and _is_release_action(ev) for ev in rest):
            continue
        if any(ev.kind == "write" and ev.word == w for ev in rest):
            continue            # someone handed the lock onward for n
        report.violation(
            "lint", "acquire-without-release",
            f"node {n} acquires lock word {w:#x}{_label(memmap, w)} "
            f"and never releases it (no later release action by node "
            f"{n}, and no store to the word by anyone)",
            node=n, word=w, block=config.block_of(w))

    # --- spins nothing satisfies (L4) ---------------------------------
    for node, word in blocked:
        report.violation(
            "lint", "spin-never-satisfied",
            f"SpinUntil on word {word:#x}{_label(memmap, word)} is "
            f"never satisfied by any store in the recorded run",
            node=node, word=word, block=config.block_of(word))

    return report
