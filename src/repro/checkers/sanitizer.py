"""Coherence sanitizer: runtime invariant checks over the protocols.

A pluggable observer hooked into the per-node controllers
(:mod:`repro.protocols.base` and subclasses) and consulted by the
machine at the end of a run.  It enforces, while the simulation runs:

* **SWMR** -- at every exclusive-entry point (WI upgrade/rdex fills and
  atomics, PU retain grants) no *other* cache may hold the block in an
  exclusive state (MODIFIED/RETAINED).  Shared copies may transiently
  coexist with the new owner while invalidation acks are in flight;
  full directory/cache agreement is checked at quiescence.
* **read-value integrity** -- every value a read returns must be one
  the golden write history knows: a value some store (or atomic, or
  merged sub-word store) actually produced for that word, the word's
  declared initial value, or uninitialized zero.  Reads served while
  the node's own write buffer holds stores to the word are skipped
  (the composed value is not yet part of any coherent copy).
* **fence completion** -- when a fence fires, the write buffer must be
  empty, no write transaction in flight, and every expected
  invalidation/update ack collected.  Checked at fire time,
  independently of the controller's own ``_fence_ok`` predicate.
* **release discipline** -- a store to a registered release word (lock
  handoff: see :meth:`repro.runtime.memory_map.MemoryMap.mark_release`)
  while earlier writes are still buffered, retiring, or un-acked means
  a missing fence: the critical section could escape the lock.
* **promoted defensive guards** -- the sequence-number install guards
  (stale invalidation ignored; invalidation overtaking a fill) report
  informational events instead of silently dropping.

At end of run :meth:`finalize` checks directory/cache agreement and
that every surviving cached or authoritative memory value belongs to
the golden history.
"""

from __future__ import annotations

from typing import Any, Dict, Set

from repro.checkers.violations import CheckerReport
from repro.memsys.cache import CacheState

#: cache states that grant exclusive (locally writable) access.  MESI's
#: clean-exclusive E belongs here: the directory records the E holder
#: as owner and its copy may become dirty silently, so SWMR and
#: directory agreement must treat it exactly like M.
EXCLUSIVE_STATES = (CacheState.MODIFIED, CacheState.RETAINED,
                    CacheState.EXCLUSIVE)


class CoherenceSanitizer:
    """Runtime coherence invariant checker for one machine."""

    def __init__(self, machine, report: CheckerReport) -> None:
        self.machine = machine
        self.report = report
        self.config = machine.config
        self.memmap = machine.memmap
        #: golden write history: word -> every value legally produced
        self._values: Dict[int, Set[Any]] = {}

    # ------------------------------------------------------------------
    # snapshot / restore
    # ------------------------------------------------------------------

    def snapshot_state(self):
        return {word: set(vals) for word, vals in self._values.items()}

    def restore_state(self, snap) -> None:
        self._values = {word: set(vals) for word, vals in snap.items()}

    # ------------------------------------------------------------------
    # golden value history
    # ------------------------------------------------------------------

    def record_value(self, word: int, value: Any) -> None:
        """Record a value as legally current for ``word`` (called at
        every point a protocol computes a word's new coherent value)."""
        s = self._values.get(word)
        if s is None:
            s = self._values[word] = set()
        s.add(value)

    def _legal(self, word: int, value: Any) -> bool:
        s = self._values.get(word)
        if s is not None and value in s:
            return True
        if value == self.memmap.initial_values.get(word, 0):
            return True
        return value == 0          # uninitialized shared memory

    def check_read(self, node: int, block: int, word: int,
                   value: Any, state: str = "") -> None:
        if not self._legal(word, value):
            self.report.violation(
                "sanitizer", "read-value",
                f"read returned {value!r}, never written to this word",
                cycle=self.machine.sim.now, node=node, block=block,
                word=word, state=state or None)

    def check_update(self, node: int, block: int, word: int,
                     value: Any) -> None:
        """An incoming update propagation must carry a known value."""
        if not self._legal(word, value):
            self.report.violation(
                "sanitizer", "update-value",
                f"update carried {value!r}, never written to this word",
                cycle=self.machine.sim.now, node=node, block=block,
                word=word)

    # ------------------------------------------------------------------
    # SWMR
    # ------------------------------------------------------------------

    def on_exclusive(self, node: int, block: int) -> None:
        """``node`` just obtained an exclusive copy of ``block``."""
        for ctrl in self.machine.controllers:
            if ctrl.node == node:
                continue
            line = ctrl.cache.peek(block)
            if line is not None and line.state in EXCLUSIVE_STATES:
                self.report.violation(
                    "sanitizer", "swmr",
                    f"node {node} became exclusive while node "
                    f"{ctrl.node} holds an exclusive copy",
                    cycle=self.machine.sim.now, node=node, block=block,
                    state=line.state.value)

    # ------------------------------------------------------------------
    # release consistency
    # ------------------------------------------------------------------

    def wrap_fence(self, ctrl, cb):
        """Wrap a fence continuation with a fire-time completion check."""
        def checked() -> None:
            if (not ctrl.wb.empty or ctrl._retiring
                    or ctrl.outstanding_acks != 0):
                self.report.violation(
                    "sanitizer", "fence-incomplete",
                    f"fence fired with {len(ctrl.wb)} buffered write(s), "
                    f"retiring={ctrl._retiring}, "
                    f"acks={ctrl.outstanding_acks}",
                    cycle=self.machine.sim.now, node=ctrl.node)
            cb()
        return checked

    def check_release_store(self, ctrl, word: int, value: Any) -> None:
        """A store to a release word must find the node quiescent."""
        if word not in self.memmap.release_words:
            return
        pred = self.memmap.release_words[word]
        if pred is not None and not pred(value):
            return
        if not ctrl._fence_ok():
            self.report.violation(
                "sanitizer", "release-store",
                f"release store of {value!r} issued with "
                f"{len(ctrl.wb)} buffered write(s), "
                f"retiring={ctrl._retiring}, "
                f"acks={ctrl.outstanding_acks} (missing fence before "
                f"lock handoff)",
                cycle=self.machine.sim.now, node=ctrl.node,
                block=self.config.block_of(word), word=word)

    # ------------------------------------------------------------------
    # promoted defensive guards (informational events)
    # ------------------------------------------------------------------

    def event(self, kind: str, detail: str, node: int = None,
              block: int = None) -> None:
        self.report.event("sanitizer", kind, detail,
                          cycle=self.machine.sim.now, node=node,
                          block=block)

    # ------------------------------------------------------------------
    # end-of-run checks
    # ------------------------------------------------------------------

    def finalize(self) -> None:
        """Directory/cache agreement + value convergence (quiesced)."""
        machine = self.machine
        controllers = machine.controllers
        cfg = self.config
        from repro.memsys.directory import DirState

        for ctrl in controllers:
            for block, ent in ctrl.directory.entries().items():
                dirty = [(c.node, ln) for c in controllers
                         if (ln := c.cache.peek(block)) is not None
                         and ln.state in EXCLUSIVE_STATES]
                if len(dirty) > 1:
                    self.report.violation(
                        "sanitizer", "swmr",
                        f"multiple exclusive copies at "
                        f"{[n for n, _ in dirty]} after quiescence",
                        block=block, state=DirState.DIRTY.value)
                if ent.state is DirState.DIRTY:
                    if [n for n, _ in dirty] != [ent.owner]:
                        self.report.violation(
                            "sanitizer", "dir-agreement",
                            f"directory says dirty at {ent.owner}, "
                            f"caches say {[n for n, _ in dirty]}",
                            block=block, state=ent.state.value)
                else:
                    if dirty:
                        self.report.violation(
                            "sanitizer", "dir-agreement",
                            f"directory {ent.state.value} but exclusive "
                            f"copy at {[n for n, _ in dirty]}",
                            block=block, state=ent.state.value)
                    holders = {c.node for c in controllers
                               if c.cache.peek(block) is not None}
                    missing = holders - ent.sharers
                    if missing:
                        self.report.violation(
                            "sanitizer", "dir-agreement",
                            f"cached at {sorted(missing)} unknown to "
                            f"the directory "
                            f"(sharers={sorted(ent.sharers)})",
                            block=block, state=ent.state.value)

        # every surviving cached value must belong to the golden history
        for ctrl in controllers:
            for block in ctrl.cache.resident_blocks():
                line = ctrl.cache.peek(block)
                if line is None:
                    continue
                for word, value in line.data.items():
                    if not self._legal(word, value):
                        self.report.violation(
                            "sanitizer", "stale-value",
                            f"cached copy holds {value!r}, never "
                            f"written to this word",
                            node=ctrl.node, block=block, word=word,
                            state=line.state.value)

        # the authoritative copy (dirty owner or home memory) of every
        # written word must hold a value from the history
        for word in self._values:
            block = cfg.block_of(word)
            value = None
            for ctrl in controllers:
                line = ctrl.cache.peek(block)
                if line is not None and line.state in EXCLUSIVE_STATES:
                    value = line.data.get(word, 0)
            if value is None:
                home = cfg.home_of_block(block)
                value = controllers[home].mem.read_word(word)
            if not self._legal(word, value):
                self.report.violation(
                    "sanitizer", "final-value",
                    f"authoritative copy holds {value!r}, never "
                    f"written to this word",
                    block=block, word=word)
