"""Happens-before data-race detector (vector clocks over release
consistency).

The detector threads one vector clock per node through the dynamic
execution, building the happens-before order out of the machine's
synchronization vocabulary:

* ``Fence`` snapshots the node's clock into its *released* clock
  ``rel`` -- the knowledge whose writes are guaranteed globally
  performed (release consistency: a fence drains the write buffer and
  collects all acks);
* every store publishes ``rel`` onto the written word, so any word can
  act as a release channel (the RC model: a release is just a store the
  consumer later synchronizes on);
* an *acquire* -- a successful :class:`~repro.isa.ops.SpinUntil`, a read
  of a registered synchronization word, or an atomic -- joins the
  word's published clock into both ``vc`` and ``rel``.  Joining into
  ``rel`` too makes synchronization chains transitive (a tree-barrier
  root republishes its children's knowledge without fencing in
  between: everything it learned via acquires is already globally
  performed);
* atomics force a write-buffer drain in this machine, so they act as a
  fence for the node's own prior writes as well (``rel := vc``), then
  publish and acquire on their word;
* ``Fork``/``Join`` and the ideal (zero-traffic) lock/barrier establish
  full edges through the simulation kernel.

Conflicting accesses (two accesses to one word, at least one a write,
from different nodes) not ordered by this relation are reported as
races.  Words used *as* synchronization are exempt from the conflict
check: the sync library registers its lock/barrier words via
:meth:`repro.runtime.memory_map.MemoryMap.mark_sync`, and every
``SpinUntil`` target is whitelisted dynamically (the paper's spin-wait
idiom is a benign race by construction).

Note the detector checks the *portable* release-consistency contract,
which is slightly stronger than what this simulator's FIFO fabric and
FIFO write buffer enforce: a plain store chain with no fence (the
``unfenced MP`` litmus pattern) is safe on this machine but is still
reported as a race, because it would not survive a weaker memory
system.  Programs that rely on the machine ordering intentionally
should run with the detector off (or fence before publishing).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

from repro.checkers.violations import CheckerReport


class WordState:
    """Per-word race-detector metadata."""

    __slots__ = ("write", "reads", "release")

    def __init__(self, nprocs: int) -> None:
        #: last plain write as an epoch (node, clock), or None
        self.write: Optional[Tuple[int, int]] = None
        #: node -> clock of that node's last plain read since the last
        #: ordered write
        self.reads: Dict[int, int] = {}
        #: vector clock published onto this word by stores/atomics
        self.release: List[int] = [0] * nprocs


class RaceDetector:
    """Vector-clock happens-before checker for one machine run."""

    def __init__(self, config, memmap, report: CheckerReport) -> None:
        self.config = config
        self.memmap = memmap
        self.report = report
        P = config.num_procs
        self.nprocs = P
        #: vc[n][m]: node n's knowledge of node m's progress
        self.vc: List[List[int]] = [[0] * P for _ in range(P)]
        #: rel[n]: the part of vc[n] whose writes have globally performed
        self.rel: List[List[int]] = [[0] * P for _ in range(P)]
        self.words: Dict[int, WordState] = {}
        #: SpinUntil targets and atomic-accessed words, whitelisted at
        #: first use (in addition to the statically registered
        #: memmap.sync_words)
        self.dynamic_sync: Set[int] = set()
        #: ideal-synchronization channels (object id -> vector clock)
        self._channels: Dict[int, List[int]] = {}
        self._reported: Set[Tuple[int, str, int, int]] = set()

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------

    @staticmethod
    def _join(dst: List[int], src: List[int]) -> None:
        for i, s in enumerate(src):
            if s > dst[i]:
                dst[i] = s

    def _word_state(self, word: int) -> WordState:
        ws = self.words.get(word)
        if ws is None:
            ws = self.words[word] = WordState(self.nprocs)
        return ws

    def _is_sync(self, word: int) -> bool:
        return word in self.memmap.sync_words or word in self.dynamic_sync

    def _race(self, kind: str, word: int, a: int, b: int,
              detail: str) -> None:
        key = (word, kind, min(a, b), max(a, b))
        if key in self._reported:
            return
        self._reported.add(key)
        alloc = next((al.label for al in self.memmap.allocations
                      if al.addr <= word < al.addr + max(
                          al.nbytes, self.config.word_size_bytes)), None)
        label = f" ({alloc})" if alloc else ""
        self.report.violation(
            "race", kind,
            f"unordered conflicting accesses to word "
            f"{word:#x}{label}: {detail}",
            node=b, word=word, block=self.config.block_of(word))

    # ------------------------------------------------------------------
    # processor-driven happens-before events
    # ------------------------------------------------------------------

    def on_read(self, node: int, addr: int) -> None:
        word = self.config.word_of(addr)
        ws = self._word_state(word)
        if self._is_sync(word):
            # reading a synchronization word is an acquire
            self._join(self.vc[node], ws.release)
            self._join(self.rel[node], ws.release)
            return
        w = ws.write
        if w is not None and w[0] != node and w[1] > self.vc[node][w[0]]:
            self._race("data-race", word, w[0], node,
                       f"write by node {w[0]} (epoch {w[1]}) vs read "
                       f"by node {node}")
        self.vc[node][node] += 1
        ws.reads[node] = self.vc[node][node]

    def on_write(self, node: int, addr: int, value: Any = None,
                 mask: Optional[int] = None) -> None:
        word = self.config.word_of(addr)
        ws = self._word_state(word)
        # every store publishes the node's globally-performed knowledge
        self._join(ws.release, self.rel[node])
        if self._is_sync(word):
            return
        self.vc[node][node] += 1
        clock = self.vc[node][node]
        w = ws.write
        if w is not None and w[0] != node and w[1] > self.vc[node][w[0]]:
            self._race("data-race", word, w[0], node,
                       f"write by node {w[0]} (epoch {w[1]}) vs write "
                       f"by node {node}")
        for t, c in ws.reads.items():
            if t != node and c > self.vc[node][t]:
                self._race("data-race", word, t, node,
                           f"read by node {t} (epoch {c}) vs write "
                           f"by node {node}")
        ws.write = (node, clock)
        ws.reads.clear()

    def on_atomic_issue(self, node: int, addr: int) -> None:
        """The atomic was issued (publish side).

        Atomics serialize at the word's owner (cache controller under
        WI, home memory under PU/CU), and the issuing processor blocks
        until completion.  Publishing at *issue* time and acquiring at
        *completion* time brackets the unknown serialization point:
        for atomics A then B in serialization order,
        ``A.issue <= A.serialize < B.serialize <= B.complete``, so B's
        acquire always sees A's publish regardless of issue order.
        """
        word = self.config.word_of(addr)
        # atomic-accessed words are synchronization objects: concurrent
        # atomics never race, and mixing them with plain accesses is the
        # sync library's handoff idiom
        self.dynamic_sync.add(word)
        ws = self._word_state(word)
        # atomics drain the write buffer before executing, so the
        # node's own prior writes have performed by the time any other
        # node can synchronize on this publish: fence semantics for rel
        self.rel[node] = list(self.vc[node])
        self._join(ws.release, self.vc[node])

    def on_atomic_complete(self, node: int, addr: int) -> None:
        """The atomic's result arrived (acquire side)."""
        ws = self._word_state(self.config.word_of(addr))
        self._join(self.vc[node], ws.release)
        self.rel[node] = list(self.vc[node])
        self._join(ws.release, self.vc[node])

    def on_atomic(self, node: int, addr: int) -> None:
        """Issue + completion in one step (unit-test convenience)."""
        self.on_atomic_issue(node, addr)
        self.on_atomic_complete(node, addr)

    def on_fence(self, node: int) -> None:
        self.rel[node] = list(self.vc[node])

    def on_spin_start(self, node: int, addr: int) -> None:
        # the paper's spin-wait idiom: the target is a benign race
        self.dynamic_sync.add(self.config.word_of(addr))

    def on_spin_success(self, node: int, word: int) -> None:
        ws = self._word_state(word)
        self._join(self.vc[node], ws.release)
        self._join(self.rel[node], ws.release)

    # ------------------------------------------------------------------
    # kernel-level synchronization (fork/join, ideal primitives)
    # ------------------------------------------------------------------

    def on_fork(self, parent: int, child: int) -> None:
        self._join(self.vc[child], self.vc[parent])
        self._join(self.rel[child], self.vc[parent])

    def on_join(self, parent: int, child: int) -> None:
        self._join(self.vc[parent], self.vc[child])
        self._join(self.rel[parent], self.vc[child])

    def ideal_release(self, node: int, channel: int) -> None:
        """An ideal lock release (the holder fenced first)."""
        ch = self._channels.get(channel)
        if ch is None:
            ch = self._channels[channel] = [0] * self.nprocs
        self._join(ch, self.vc[node])

    def ideal_acquire(self, node: int, channel: int) -> None:
        ch = self._channels.get(channel)
        if ch is not None:
            self._join(self.vc[node], ch)
            self._join(self.rel[node], ch)

    def ideal_barrier(self, nodes: List[int]) -> None:
        """An ideal barrier episode: all-to-all edges."""
        joined = [0] * self.nprocs
        for n in nodes:
            self._join(joined, self.vc[n])
        for n in nodes:
            self._join(self.vc[n], joined)
            self._join(self.rel[n], joined)
