"""Checkers: coherence sanitizer, race detector, and ISA-stream lint.

Three cooperating analyses over the simulated machine (see
``docs/checkers.md``):

* :class:`CoherenceSanitizer` -- runtime protocol-invariant checks
  (SWMR, directory/cache agreement, golden value history, fence and
  release discipline), enabled via
  :attr:`repro.config.MachineConfig.enable_sanitizer`;
* :class:`RaceDetector` -- vector-clock happens-before data-race
  detection over the machine's synchronization vocabulary, enabled via
  :attr:`repro.config.MachineConfig.enable_race_detector`;
* :func:`run_lint` -- a static pass over recorded ISA op streams that
  needs no machine run.

All three report through one :class:`CheckerReport`; strict machines
raise :class:`CheckerError` at end of run when it is not clean.
"""

from repro.checkers.lint import (
    LintEvent, LintFuelExhausted, record_streams, run_lint,
)
from repro.checkers.race import RaceDetector
from repro.checkers.sanitizer import CoherenceSanitizer
from repro.checkers.violations import (
    CheckerError, CheckerEvent, CheckerReport, Violation,
)

__all__ = [
    "CheckerError",
    "CheckerEvent",
    "CheckerReport",
    "CoherenceSanitizer",
    "LintEvent",
    "LintFuelExhausted",
    "RaceDetector",
    "Violation",
    "record_streams",
    "run_lint",
]
