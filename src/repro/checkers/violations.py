"""Violation records shared by the three checkers (subsystem S15).

Every checker (coherence sanitizer, happens-before race detector, static
lint pass) reports through the same :class:`Violation` record and
:class:`CheckerReport` container so that tests, the ``check`` CLI and
strict-mode machines all consume one format.

A violation names the *checker* that found it, a short *rule* id, and --
whenever the dynamic checkers can supply them -- the cycle, node, block,
word and protocol state involved.  Informational *events* (e.g. the
promoted sequence-number install guards) ride in the same report but do
not fail a strict run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional


@dataclass(frozen=True)
class Violation:
    """One checker finding.

    ``cycle``/``node``/``block``/``word``/``state`` are ``None`` when the
    checker cannot know them (the static lint pass has no cycles; a
    race involves two accesses, detailed in ``detail`` instead).
    """

    checker: str                      # "sanitizer" | "race" | "lint"
    rule: str                         # short rule id, e.g. "swmr"
    detail: str                       # human-readable description
    cycle: Optional[int] = None
    node: Optional[int] = None
    block: Optional[int] = None
    word: Optional[int] = None
    state: Optional[str] = None       # protocol/cache state, if known

    def __str__(self) -> str:
        where = []
        if self.cycle is not None:
            where.append(f"cycle={self.cycle}")
        if self.node is not None:
            where.append(f"node={self.node}")
        if self.block is not None:
            where.append(f"blk={self.block}")
        if self.word is not None:
            where.append(f"word={self.word:#x}")
        if self.state is not None:
            where.append(f"state={self.state}")
        loc = f" [{' '.join(where)}]" if where else ""
        return f"{self.checker}:{self.rule}{loc} {self.detail}"


@dataclass(frozen=True)
class CheckerEvent:
    """An informational (non-failing) checker observation."""

    checker: str
    kind: str
    detail: str
    cycle: Optional[int] = None
    node: Optional[int] = None
    block: Optional[int] = None

    def __str__(self) -> str:
        where = []
        if self.cycle is not None:
            where.append(f"cycle={self.cycle}")
        if self.node is not None:
            where.append(f"node={self.node}")
        if self.block is not None:
            where.append(f"blk={self.block}")
        loc = f" [{' '.join(where)}]" if where else ""
        return f"{self.checker}:{self.kind}{loc} {self.detail}"


class CheckerReport:
    """Accumulates violations and events across all enabled checkers."""

    def __init__(self) -> None:
        self.violations: List[Violation] = []
        self.events: List[CheckerEvent] = []

    # ------------------------------------------------------------------

    def violation(self, checker: str, rule: str, detail: str,
                  **kw: Any) -> Violation:
        v = Violation(checker, rule, detail, **kw)
        self.violations.append(v)
        return v

    def event(self, checker: str, kind: str, detail: str,
              **kw: Any) -> CheckerEvent:
        e = CheckerEvent(checker, kind, detail, **kw)
        self.events.append(e)
        return e

    # ------------------------------------------------------------------

    def snapshot_state(self):
        # Violation / CheckerEvent are frozen dataclasses: list copies
        # fully capture the report
        return (list(self.violations), list(self.events))

    def restore_state(self, snap) -> None:
        violations, events = snap
        self.violations = list(violations)
        self.events = list(events)

    @property
    def clean(self) -> bool:
        return not self.violations

    def by_checker(self, checker: str) -> List[Violation]:
        return [v for v in self.violations if v.checker == checker]

    def by_rule(self, rule: str) -> List[Violation]:
        return [v for v in self.violations if v.rule == rule]

    def events_of(self, kind: str) -> List[CheckerEvent]:
        return [e for e in self.events if e.kind == kind]

    def render(self) -> str:
        lines = []
        if self.violations:
            lines.append(f"{len(self.violations)} violation(s):")
            lines.extend(f"  {v}" for v in self.violations)
        else:
            lines.append("no violations")
        if self.events:
            lines.append(f"{len(self.events)} event(s):")
            lines.extend(f"  {e}" for e in self.events)
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<CheckerReport violations={len(self.violations)} "
                f"events={len(self.events)}>")


class CheckerError(AssertionError):
    """Raised by a strict machine when a checker found violations.

    Subclasses ``AssertionError`` so checker failures read as invariant
    breaches to the test suite.
    """

    def __init__(self, report: CheckerReport) -> None:
        super().__init__(report.render())
        self.report = report
