"""Synthetic workloads (subsystem S15): the paper's section-4 programs."""

from repro.workloads.locks import (
    LockWorkloadResult, run_lock_workload, DEFAULT_HOLD_CYCLES,
)
from repro.workloads.barriers import (
    BarrierWorkloadResult, run_barrier_workload,
)
from repro.workloads.reductions import (
    ReductionWorkloadResult, run_reduction_workload, local_value,
)

__all__ = [
    "LockWorkloadResult", "run_lock_workload", "DEFAULT_HOLD_CYCLES",
    "BarrierWorkloadResult", "run_barrier_workload",
    "ReductionWorkloadResult", "run_reduction_workload", "local_value",
]
