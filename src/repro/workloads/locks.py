"""The lock synthetic program (paper section 4.1).

Each processor acquires the lock, holds it for 50 cycles, releases it,
all in a tight loop executed ``total/P`` times (32000 total in the
paper).  Figure 8's metric is ``execution_time / total - hold``: the
average latency of an acquire-release pair.

Contention variants from the paper's text:

* ``delay_mode="random"`` -- after each release the processor wastes a
  pseudo-random (bounded) amount of time, reducing contention;
* ``delay_mode="proportional"`` -- the work outside the critical
  section equals ``P`` times the work inside it (+-10%), the paper's
  controlled-contention experiment.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.config import MachineConfig
from repro.isa.ops import Compute
from repro.runtime import Machine, RunResult
from repro.sync.locks import make_lock

DEFAULT_HOLD_CYCLES = 50
#: bound on the random post-release delay (cycles)
RANDOM_DELAY_BOUND = 400
#: bound on the per-iteration timing jitter (cycles).  The paper's
#: front-end executed real MIPS code, whose instruction-level timing
#: variation continually reshuffles the order in which processors
#: re-join the lock queue; a perfectly deterministic tight loop instead
#: converges to a fixed round-robin queue in which each processor keeps
#: the same neighbours forever, hiding the queue-node sharing pathology
#: of section 4.1 (competitors never accumulate stale cached copies of
#: each other's queue nodes).  A bounded jitter of a few lock-service
#: intervals restores the reshuffling while the queue stays saturated,
#: so contention is unchanged.  See DESIGN.md.
DEFAULT_JITTER_CYCLES = 512


@dataclass
class LockWorkloadResult:
    """Figure-8/9/10 measurements for one (lock, protocol, P) point."""

    result: RunResult
    total_acquires: int
    hold_cycles: int

    @property
    def avg_latency(self) -> float:
        """Average acquire-release latency (the figure-8 metric)."""
        return (self.result.total_cycles / self.total_acquires
                - self.hold_cycles)


def run_lock_workload(config: MachineConfig, lock_kind: str,
                      total_acquires: int = 32000,
                      hold_cycles: int = DEFAULT_HOLD_CYCLES,
                      delay_mode: str = "none",
                      seed: int = 0xC0FFEE,
                      colocate: bool = True,
                      jitter_cycles: int = DEFAULT_JITTER_CYCLES,
                      max_events: Optional[int] = None,
                      ) -> LockWorkloadResult:
    """Build, run and measure the lock synthetic program."""
    P = config.num_procs
    iters = max(1, total_acquires // P)
    actual_total = iters * P

    machine = Machine(config, max_events=max_events)
    if lock_kind == "tk":
        lock = make_lock(lock_kind, machine, home=0, colocate=colocate)
    else:
        lock = make_lock(lock_kind, machine, home=0)

    def program(node: int):
        rng = random.Random(seed * 1_000_003 + node)
        for _ in range(iters):
            token = yield from lock.acquire(node)
            yield Compute(hold_cycles)
            yield from lock.release(node, token)
            if jitter_cycles:
                yield Compute(rng.randint(0, jitter_cycles))
            if delay_mode == "random":
                yield Compute(rng.randint(0, RANDOM_DELAY_BOUND))
            elif delay_mode == "proportional":
                outside = int(hold_cycles * P * rng.uniform(0.9, 1.1))
                yield Compute(outside)
            elif delay_mode != "none":
                raise ValueError(f"unknown delay_mode {delay_mode!r}")

    machine.spawn_all(program)
    result = machine.run()
    return LockWorkloadResult(result, actual_total, hold_cycles)
