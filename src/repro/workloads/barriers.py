"""The barrier synthetic program (paper section 4.2).

Processors go through the barrier in a tight loop executed 5000 times.
Figure 11's metric is ``execution_time / episodes``: the average
latency of a barrier episode.

As with the lock workload, a small bounded per-iteration jitter stands
in for the instruction-level timing variation of the paper's MIPS
front-end: it varies which processor arrives last at each episode
(without it, a deterministic loop elects the same "last arriver"
forever, and the centralized barrier's counter block never accumulates
the stale sharers whose useless update traffic figure 13 reports).
The jitter bound is far below an episode latency, so episode timing is
essentially unchanged.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.config import MachineConfig
from repro.isa.ops import Compute
from repro.runtime import Machine, RunResult
from repro.sync.barriers import make_barrier

#: bound on the per-iteration timing jitter (cycles)
DEFAULT_JITTER_CYCLES = 32


@dataclass
class BarrierWorkloadResult:
    """Figure-11/12/13 measurements for one (barrier, protocol, P)."""

    result: RunResult
    episodes: int

    @property
    def avg_latency(self) -> float:
        """Average barrier-episode latency (the figure-11 metric)."""
        return self.result.total_cycles / self.episodes


def run_barrier_workload(config: MachineConfig, barrier_kind: str,
                         episodes: int = 5000,
                         jitter_cycles: int = DEFAULT_JITTER_CYCLES,
                         seed: int = 0xBA881E8,
                         max_events: Optional[int] = None,
                         **barrier_kw) -> BarrierWorkloadResult:
    """Build, run and measure the barrier synthetic program."""
    machine = Machine(config, max_events=max_events)
    barrier = make_barrier(barrier_kind, machine, **barrier_kw)

    def program(node: int):
        rng = random.Random(seed * 65_537 + node)
        for _ in range(episodes):
            if jitter_cycles:
                yield Compute(rng.randint(0, jitter_cycles))
            yield from barrier.wait(node)

    machine.spawn_all(program)
    result = machine.run()
    return BarrierWorkloadResult(result, episodes)
