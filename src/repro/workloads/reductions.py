"""The reduction synthetic program (paper section 4.3).

Each processor executes 5000 reductions in a tight loop.  To avoid
disturbing the results with synchronization traffic, the locks and
barriers are the *ideal* (zero-traffic) primitives.  Figure 14's metric
is ``execution_time / iterations``: the average latency of one whole
reduction operation.

``imbalance=True`` reproduces the paper's modified experiment: a
pseudo-random amount of local work before each reduction generates load
imbalance and reduces lock contention (under which parallel reductions
become the better strategy).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.config import MachineConfig
from repro.isa.ops import Compute
from repro.runtime import Machine, RunResult
from repro.sync.ideal import IdealBarrier, IdealLock
from repro.sync.reductions import ParallelReduction, SequentialReduction

#: bound on the random pre-reduction work in the imbalance variant
IMBALANCE_BOUND = 600


#: episodes per value band (the global max advances once per band and
#: saturates for the rest of it, so a realistic fraction of episodes
#: actually modifies the reduction target)
VALUE_BAND = 3


def local_value(node: int, iteration: int) -> int:
    """Deterministic per-(processor, iteration) reduction argument.

    Values advance in bands of :data:`VALUE_BAND` episodes: the first
    episode of a band raises the global max (with the winning processor
    varying pseudo-randomly); the remaining episodes of the band
    re-reduce over the same values, so the running max saturates --
    as in a real iterative application, not every episode discovers a
    new extremum.
    """
    band = iteration - (iteration % VALUE_BAND)
    return band * 1000 + ((node * 2654435761 + band * 40503) >> 7) % 997


@dataclass
class ReductionWorkloadResult:
    """Figure-14/15/16 measurements for one (reduction, protocol, P)."""

    result: RunResult
    iterations: int

    @property
    def avg_latency(self) -> float:
        """Average latency of a whole reduction (figure-14 metric)."""
        return self.result.total_cycles / self.iterations


def run_reduction_workload(config: MachineConfig, reduction_kind: str,
                           iterations: int = 5000,
                           imbalance: bool = False,
                           seed: int = 0xFACADE,
                           padded: bool = True,
                           max_events: Optional[int] = None,
                           ) -> ReductionWorkloadResult:
    """Build, run and measure the reduction synthetic program."""
    machine = Machine(config, max_events=max_events)
    barrier = IdealBarrier(machine)
    if reduction_kind == "pr":
        red = ParallelReduction(machine, IdealLock(machine), barrier)
    elif reduction_kind == "sr":
        red = SequentialReduction(machine, barrier, padded=padded)
    else:
        raise ValueError(f"unknown reduction kind {reduction_kind!r}")

    def program(node: int):
        rng = random.Random(seed * 7919 + node)
        for it in range(iterations):
            if imbalance:
                yield Compute(rng.randint(0, IMBALANCE_BOUND))
            value = local_value(node, it)
            got = yield from red.reduce(node, value)
            # sanity: the reduction result must dominate our argument
            if got < value:
                raise AssertionError(
                    f"node {node} iter {it}: reduction returned {got} "
                    f"< own value {value}")

    machine.spawn_all(program)
    result = machine.run()
    return ReductionWorkloadResult(result, iterations)
