"""Protocol / execution tracing.

Tracing is opt-in: the :class:`NullTracer` used by default turns every
trace call into a single attribute lookup + truth test, keeping the hot
path cheap.  A real :class:`Tracer` records structured records that tests
and debugging sessions can assert against or dump as text.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple


@dataclass(frozen=True)
class TraceRecord:
    time: int
    category: str
    node: int
    event: str
    detail: Tuple[Tuple[str, Any], ...]

    def get(self, key: str, default: Any = None) -> Any:
        for k, v in self.detail:
            if k == key:
                return v
        return default

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        kv = " ".join(f"{k}={v}" for k, v in self.detail)
        return f"[{self.time:>10}] n{self.node:<2} {self.category}:{self.event} {kv}"


class NullTracer:
    """A tracer that records nothing (the default)."""

    enabled = False

    def record(self, time: int, category: str, node: int, event: str,
               **detail: Any) -> None:
        pass

    def records(self) -> List[TraceRecord]:
        return []


class Tracer(NullTracer):
    """Records structured trace records, optionally filtered by category.

    Parameters
    ----------
    categories:
        If given, only records whose category is in this set are kept.
    sink:
        Optional callable invoked with each record as it is created
        (e.g. ``print``).
    limit:
        Maximum number of records to retain (protects long runs).
    """

    enabled = True

    def __init__(self, categories: Optional[set] = None,
                 sink: Optional[Callable[[TraceRecord], None]] = None,
                 limit: int = 1_000_000) -> None:
        self._records: List[TraceRecord] = []
        self._categories = categories
        self._sink = sink
        self._limit = limit
        self.dropped = 0

    def record(self, time: int, category: str, node: int, event: str,
               **detail: Any) -> None:
        if self._categories is not None and category not in self._categories:
            return
        if len(self._records) >= self._limit:
            self.dropped += 1
            return
        rec = TraceRecord(time, category, node, event,
                          tuple(sorted(detail.items())))
        self._records.append(rec)
        if self._sink is not None:
            self._sink(rec)

    def records(self) -> List[TraceRecord]:
        return list(self._records)

    def filter(self, category: Optional[str] = None,
               event: Optional[str] = None,
               node: Optional[int] = None) -> Iterator[TraceRecord]:
        for rec in self._records:
            if category is not None and rec.category != category:
                continue
            if event is not None and rec.event != event:
                continue
            if node is not None and rec.node != node:
                continue
            yield rec

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for rec in self._records:
            key = f"{rec.category}:{rec.event}"
            out[key] = out.get(key, 0) + 1
        return out

    def clear(self) -> None:
        self._records.clear()
        self.dropped = 0
