"""Discrete-event simulation kernel (subsystem S1)."""

from repro.engine.simulator import (
    ControlledSimulator, DeadlockError, SimulationError, Simulator,
    StuckThread,
)
from repro.engine.trace import Tracer, NullTracer

__all__ = [
    "Simulator",
    "ControlledSimulator",
    "SimulationError",
    "DeadlockError",
    "StuckThread",
    "Tracer",
    "NullTracer",
]
