"""Discrete-event simulation kernel (subsystem S1)."""

from repro.engine.simulator import (
    DeadlockError, SimulationError, Simulator, StuckThread,
)
from repro.engine.trace import Tracer, NullTracer

__all__ = [
    "Simulator",
    "SimulationError",
    "DeadlockError",
    "StuckThread",
    "Tracer",
    "NullTracer",
]
