"""Discrete-event simulation kernel (subsystem S1)."""

from repro.engine.simulator import Simulator, SimulationError, DeadlockError
from repro.engine.trace import Tracer, NullTracer

__all__ = [
    "Simulator",
    "SimulationError",
    "DeadlockError",
    "Tracer",
    "NullTracer",
]
