"""The discrete-event simulation core.

The simulator keeps a single global event queue ordered by (time, seq).
``seq`` is a monotonically increasing tie-breaker, which makes runs fully
deterministic: events scheduled for the same cycle fire in the order they
were scheduled.

Components never advance time themselves; they schedule callbacks with
:meth:`Simulator.schedule` (relative delay) or :meth:`Simulator.at`
(absolute time).  This is the hot loop of the whole package, so the
implementation stays deliberately small: events are plain tuples on a
``heapq`` and callbacks are invoked with pre-bound arguments.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence, Tuple


class SimulationError(RuntimeError):
    """Base class for simulation failures."""


@dataclass(frozen=True)
class StuckThread:
    """One thread still blocked when the event queue drained."""

    node: int
    op: str                    # repr of the operation it was blocked on

    def __str__(self) -> str:
        return f"node {self.node} blocked at {self.op}"


class DeadlockError(SimulationError):
    """Raised when the event queue drains while threads are still blocked.

    ``stuck`` attributes the deadlock: one :class:`StuckThread` per
    never-finished thread, naming its node and the operation it was
    blocked on.
    """

    def __init__(self, message: str,
                 stuck: Sequence[StuckThread] = ()) -> None:
        super().__init__(message)
        self.stuck: List[StuckThread] = list(stuck)


class Simulator:
    """A deterministic discrete-event simulator.

    >>> sim = Simulator()
    >>> hits = []
    >>> sim.schedule(5, hits.append, "a")
    >>> sim.schedule(3, hits.append, "b")
    >>> sim.run()
    >>> hits
    ['b', 'a']
    >>> sim.now
    5
    """

    __slots__ = ("now", "_queue", "_seq", "_running", "_stopped",
                 "_max_events", "events_processed")

    def __init__(self, max_events: Optional[int] = None) -> None:
        self.now: int = 0
        self._queue: List[Tuple[int, int, Callable[..., Any], tuple]] = []
        self._seq: int = 0
        self._running = False
        self._stopped = False
        #: safety valve against runaway simulations (None = unbounded)
        self._max_events = max_events
        self.events_processed: int = 0

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------

    def schedule(self, delay: int, fn: Callable[..., Any], *args: Any) -> None:
        """Schedule ``fn(*args)`` to run ``delay`` cycles from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        self._seq += 1
        heapq.heappush(self._queue, (self.now + delay, self._seq, fn, args))

    def at(self, when: int, fn: Callable[..., Any], *args: Any) -> None:
        """Schedule ``fn(*args)`` at absolute time ``when`` (>= now)."""
        if when < self.now:
            raise SimulationError(
                f"cannot schedule in the past ({when} < {self.now})")
        self._seq += 1
        heapq.heappush(self._queue, (when, self._seq, fn, args))

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def run(self, until: Optional[int] = None) -> None:
        """Drain the event queue, optionally stopping at time ``until``.

        Returns when the queue is empty or ``until`` is reached.  The
        clock is left at the time of the last processed event (or at
        ``until`` if given and reached).
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        self._stopped = False
        queue = self._queue
        pop = heapq.heappop
        limit = self._max_events
        try:
            if until is None and limit is None:
                # the common case: no horizon, no livelock budget --
                # nothing but pop / advance / dispatch per event
                while queue:
                    when, _seq, fn, args = pop(queue)
                    self.now = when
                    self.events_processed += 1
                    fn(*args)
                    if self._stopped:
                        return
                return
            while queue and not self._stopped:
                if until is not None and queue[0][0] > until:
                    # peek, don't pop: same-cycle seq order is untouched
                    self.now = until
                    return
                when, _seq, fn, args = pop(queue)
                self.now = when
                self._count_event()
                fn(*args)
        finally:
            self._running = False

    def stop(self) -> None:
        """Stop the run loop after the current event."""
        self._stopped = True

    def _count_event(self) -> None:
        """Tick ``events_processed`` and trip the ``max_events``
        livelock safety valve (shared by :meth:`run` and :meth:`step`)."""
        self.events_processed += 1
        if (self._max_events is not None
                and self.events_processed > self._max_events):
            raise SimulationError(
                f"exceeded max_events={self._max_events}; "
                "likely livelock")

    def step(self) -> bool:
        """Process a single event.  Returns False if the queue is empty
        or the simulator has been stopped.  Enforces the same
        ``max_events`` livelock safety valve as :meth:`run`.
        """
        if self._stopped or not self._queue:
            return False
        when, _seq, fn, args = heapq.heappop(self._queue)
        self.now = when
        self._count_event()
        fn(*args)
        return True

    # ------------------------------------------------------------------
    # snapshot / restore
    # ------------------------------------------------------------------

    def snapshot(self):
        """O(pending events) copy of the simulator's state.  Event
        tuples are immutable and shared with the snapshot; their bound
        arguments are component objects the caller is responsible for
        restoring in place."""
        return (self.now, self._seq, list(self._queue),
                self.events_processed, self._stopped)

    def restore(self, snap) -> None:
        now, seq, queue, events_processed, stopped = snap
        self.now = now
        self._seq = seq
        # the snapshot list was copied from a valid heap, so it is one
        self._queue[:] = queue
        self.events_processed = events_processed
        self._stopped = stopped

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    @property
    def pending_events(self) -> int:
        return len(self._queue)

    def peek_time(self) -> Optional[int]:
        """Time of the next event, or None if the queue is empty."""
        return self._queue[0][0] if self._queue else None


class ControlledSimulator(Simulator):
    """A :class:`Simulator` whose same-cycle event order is a choice.

    The stock simulator resolves same-cycle ties by scheduling order
    (``seq``), which makes every run deterministic -- and blind to the
    interleavings a real machine could exhibit.  This subclass exposes
    that tie-break as an explicit *choice point*: whenever two or more
    events are ready at the minimum time, ``chooser(candidates)`` picks
    which one fires next; the rest are pushed back (keeping their seq
    numbers) and re-offered -- possibly alongside events the chosen
    handler just scheduled for the same cycle.

    ``candidates`` is the seq-ordered list of ready event tuples
    ``(time, seq, fn, args)``.  A ``None`` chooser (or one that always
    answers 0) reproduces the stock simulator exactly.  Every decision
    is appended to ``choice_log`` as ``(n_candidates, chosen_index)``,
    which is precisely the schedule the model checker replays.
    """

    __slots__ = ("chooser", "choice_log")

    def __init__(self, chooser: Optional[
            Callable[[List[tuple]], int]] = None,
            max_events: Optional[int] = None) -> None:
        super().__init__(max_events=max_events)
        self.chooser = chooser
        self.choice_log: List[Tuple[int, int]] = []

    def _pop_controlled(self) -> tuple:
        """Pop the next event, consulting the chooser on a tie."""
        queue = self._queue
        when = queue[0][0]
        batch = [heapq.heappop(queue)]
        while queue and queue[0][0] == when:
            batch.append(heapq.heappop(queue))
        if len(batch) == 1:
            return batch[0]
        idx = 0 if self.chooser is None else self.chooser(batch)
        if not 0 <= idx < len(batch):
            raise SimulationError(
                f"chooser returned {idx} for {len(batch)} candidates")
        self.choice_log.append((len(batch), idx))
        chosen = batch.pop(idx)
        for event in batch:
            heapq.heappush(queue, event)
        return chosen

    def run(self, until: Optional[int] = None) -> None:
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        self._stopped = False
        try:
            while self._queue and not self._stopped:
                if until is not None and self._queue[0][0] > until:
                    self.now = until
                    return
                when, _seq, fn, args = self._pop_controlled()
                self.now = when
                self._count_event()
                fn(*args)
        finally:
            self._running = False

    def step(self) -> bool:
        if self._stopped or not self._queue:
            return False
        when, _seq, fn, args = self._pop_controlled()
        self.now = when
        self._count_event()
        fn(*args)
        return True

    def snapshot(self):
        return (super().snapshot(), list(self.choice_log))

    def restore(self, snap) -> None:
        base, choice_log = snap
        super().restore(base)
        self.choice_log[:] = choice_log
