"""The discrete-event simulation core.

The simulator dispatches events in (time, seq) order.  ``seq`` is the
scheduling order within a cycle, which makes runs fully deterministic:
events scheduled for the same cycle fire in the order they were
scheduled.

Components never advance time themselves; they schedule callbacks with
:meth:`Simulator.schedule` (relative delay) or :meth:`Simulator.at`
(absolute time).  This is the hot loop of the whole package.

Storage is a *calendar queue*: simulated delays are small bounded ints
(NIC serialisation, hop latency, memory occupancy), so pending events
live in a ring of per-cycle FIFO buckets indexed by ``when & (R - 1)``.
Scheduling is two list appends -- no per-event tuple is allocated --
and ``run()`` drains a whole bucket as a batch.  The rare event landing
``R`` or more cycles out goes to a small overflow heap and is flushed
into its bucket when the horizon advances past it.

Ordering invariants (these make bucket FIFO order == ``(when, seq)``
order, exactly matching the previous heapq implementation):

* the ring holds events with ``when`` in ``[now, horizon)``; the
  overflow heap holds ``when >= horizon``; ``horizon`` never decreases
  and stays within ``R`` of the clock, so bucket indices are unambiguous;
* an event is appended to a bucket only while ``when < horizon``, and
  the overflow heap is flushed (in ``(when, seq)`` order) the moment
  ``horizon`` rises past an event's cycle -- so within any bucket,
  append order is scheduling order.

:class:`ControlledSimulator` (model checking) keeps the explicit
``(when, seq, fn, args)`` heap representation instead: it must expose
same-cycle candidate *batches* as choice points, snapshot cheaply at
every branch, and share event tuples between snapshots by reference.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Any, Callable, Iterator, List, Optional, Sequence, Tuple

#: ring size in cycles; must be a power of two.  Delays in the modelled
#: machine are tens of cycles, so virtually nothing overflows.
_RING = 512
_MASK = _RING - 1

#: occupancy bitmask tables: bit ``i`` of ``Simulator._occ`` is set
#: exactly when ring bucket ``i`` is non-empty.  ``_BIT[i]`` sets it,
#: ``_CLR[i]`` clears it.  Because every pending in-horizon cycle
#: ``t`` lies in ``[now, now + _RING)``, bucket index ``t & _MASK``
#: identifies ``t`` uniquely, and the next occupied cycle is found in
#: O(1) with one shift + least-set-bit on a 512-bit int -- no heap,
#: no scan, no stale entries.
_BIT = tuple(1 << i for i in range(_RING))
_CLR = tuple(~(1 << i) for i in range(_RING))


class SimulationError(RuntimeError):
    """Base class for simulation failures."""


@dataclass(frozen=True)
class StuckThread:
    """One thread still blocked when the event queue drained."""

    node: int
    op: str                    # repr of the operation it was blocked on

    def __str__(self) -> str:
        return f"node {self.node} blocked at {self.op}"


class DeadlockError(SimulationError):
    """Raised when the event queue drains while threads are still blocked.

    ``stuck`` attributes the deadlock: one :class:`StuckThread` per
    never-finished thread, naming its node and the operation it was
    blocked on.
    """

    def __init__(self, message: str,
                 stuck: Sequence[StuckThread] = ()) -> None:
        super().__init__(message)
        self.stuck: List[StuckThread] = list(stuck)


class Simulator:
    """A deterministic discrete-event simulator.

    >>> sim = Simulator()
    >>> hits = []
    >>> sim.schedule(5, hits.append, "a")
    >>> sim.schedule(3, hits.append, "b")
    >>> sim.run()
    >>> hits
    ['b', 'a']
    >>> sim.now
    5

    ``snapshot()``/``restore()`` may be called between :meth:`run`
    calls, never from inside an executing event (use
    :class:`ControlledSimulator` for that).
    """

    __slots__ = ("now", "_ring", "_occ", "_overflow",
                 "_horizon", "_seq", "_running", "_stopped",
                 "_max_events", "events_processed")

    def __init__(self, max_events: Optional[int] = None) -> None:
        self.now: int = 0
        #: flat per-cycle buckets: [fn0, args0, fn1, args1, ...]
        self._ring: List[list] = [[] for _ in range(_RING)]
        #: ring-occupancy bitmask: bit ``i`` set iff ``_ring[i]`` is
        #: non-empty (see ``_BIT``/``_CLR``).  Maintained by every
        #: insert (empty -> non-empty) and every bucket drain.
        self._occ: int = 0
        #: far-future events, as (when, seq, fn, args) heap entries
        self._overflow: List[Tuple[int, int, Callable[..., Any], tuple]] = []
        self._horizon: int = _RING
        self._seq: int = 0
        self._running = False
        self._stopped = False
        #: safety valve against runaway simulations (None = unbounded)
        self._max_events = max_events
        self.events_processed: int = 0

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------

    def schedule(self, delay: int, fn: Callable[..., Any], *args: Any) -> None:
        """Schedule ``fn(*args)`` to run ``delay`` cycles from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        when = self.now + delay
        if when < self._horizon:
            i = when & _MASK
            b = self._ring[i]
            if not b:
                self._occ |= _BIT[i]
            b.append(fn)
            b.append(args)
        else:
            self._insert_far(when, fn, args)

    def at(self, when: int, fn: Callable[..., Any], *args: Any) -> None:
        """Schedule ``fn(*args)`` at absolute time ``when`` (>= now)."""
        if when < self.now:
            raise SimulationError(
                f"cannot schedule in the past ({when} < {self.now})")
        if when < self._horizon:
            i = when & _MASK
            b = self._ring[i]
            if not b:
                self._occ |= _BIT[i]
            b.append(fn)
            b.append(args)
        else:
            self._insert_far(when, fn, args)

    def _insert_far(self, when: int, fn: Callable[..., Any],
                    args: tuple) -> None:
        """Insert an event at or beyond the horizon: advance the
        horizon if the ring can cover it, else park it in the overflow
        heap."""
        if when < self.now + _RING:
            self._advance_horizon()
            i = when & _MASK
            b = self._ring[i]
            if not b:
                self._occ |= _BIT[i]
            b.append(fn)
            b.append(args)
        else:
            self._seq += 1
            heapq.heappush(self._overflow, (when, self._seq, fn, args))

    def _advance_horizon(self) -> None:
        """Raise the horizon to ``now + R`` and flush newly-covered
        overflow events into their buckets in (when, seq) order."""
        new_h = self.now + _RING
        overflow = self._overflow
        if overflow:
            ring = self._ring
            pop = heapq.heappop
            while overflow and overflow[0][0] < new_h:
                when, _seq, fn, args = pop(overflow)
                i = when & _MASK
                b = ring[i]
                if not b:
                    self._occ |= _BIT[i]
                b.append(fn)
                b.append(args)
        self._horizon = new_h

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def _next_time(self) -> Optional[int]:
        """Cycle of the next pending event, or None if idle.

        Pure occupancy-mask arithmetic: bits at index >= ``now & _MASK``
        are cycles in the current ring lap, lower bits are cycles that
        wrapped past the lap boundary (and therefore come later)."""
        occ = self._occ
        if occ:
            now = self.now
            idx = now & _MASK
            x = occ >> idx
            if x:
                return now + ((x & -x).bit_length() - 1)
            return now + _RING - idx + ((occ & -occ).bit_length() - 1)
        if self._overflow:
            return self._overflow[0][0]
        return None

    def run(self, until: Optional[int] = None) -> None:
        """Drain the event queue, optionally stopping at time ``until``.

        Returns when the queue is empty or ``until`` is reached.  The
        clock is left at the time of the last processed event (or at
        ``until`` if given and reached).
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        self._stopped = False
        ring = self._ring
        overflow = self._overflow
        try:
            if until is None and self._max_events is None:
                # the common case: no horizon, no livelock budget.
                # Find the next occupied cycle straight from the
                # occupancy mask and drain its bucket.  The bucket is
                # emptied (and its bit cleared) *before* dispatch, so a
                # handler scheduling into the current cycle re-occupies
                # it through the ordinary schedule() path and the mask
                # re-finds it at the same ``now`` -- after the current
                # batch, i.e. still in scheduling order.
                done = 0
                try:
                    while True:
                        occ = self._occ
                        if not occ:
                            if overflow:
                                self.now = overflow[0][0]
                                self._advance_horizon()
                                continue
                            return
                        idx = self.now & _MASK
                        x = occ >> idx
                        if x:
                            off = (x & -x).bit_length() - 1
                            t = self.now + off
                            bi = (idx + off) & _MASK
                        else:
                            bi = (occ & -occ).bit_length() - 1
                            t = self.now + _RING - idx + bi
                        b = ring[bi]
                        self._occ = occ & _CLR[bi]
                        self.now = t
                        if len(b) == 2:         # singleton bucket
                            fn, args = b
                            b.clear()
                            done += 1
                            fn(*args)
                            if self._stopped:
                                return
                            continue
                        batch = b[:]
                        b.clear()
                        i = 0
                        n = len(batch)
                        while i < n:
                            fn = batch[i]
                            args = batch[i + 1]
                            i += 2
                            done += 1
                            fn(*args)
                            if self._stopped:
                                rest = batch[i:]
                                if rest:
                                    # t == now: the mask re-finds the
                                    # bucket on resume
                                    b[0:0] = rest   # ahead of new arrivals
                                    self._occ |= _BIT[bi]
                                return
                finally:
                    self.events_processed += done
            # bounded path: a time horizon and/or livelock budget
            limit = self._max_events
            while not self._stopped:
                t = self._next_time()
                if t is None:
                    return
                if until is not None and t > until:
                    # never dispatched: same-cycle seq order untouched
                    self.now = until
                    return
                self.now = t
                if t >= self._horizon:
                    self._advance_horizon()
                bi = t & _MASK
                b = ring[bi]
                batch = b[:]
                b.clear()
                self._occ &= _CLR[bi]
                i = 0
                n = len(batch)
                try:
                    while i < n:
                        fn = batch[i]
                        args = batch[i + 1]
                        i += 2
                        self.events_processed += 1
                        if (limit is not None
                                and self.events_processed > limit):
                            raise SimulationError(
                                f"exceeded max_events={limit}; "
                                "likely livelock")
                        fn(*args)
                        if self._stopped:
                            break
                finally:
                    rest = batch[i:]
                    if rest:
                        # t == now: the mask re-finds it on resume
                        b[0:0] = rest       # ahead of new arrivals
                        self._occ |= _BIT[bi]
        finally:
            self._running = False

    def stop(self) -> None:
        """Stop the run loop after the current event."""
        self._stopped = True

    def _count_event(self) -> None:
        """Tick ``events_processed`` and trip the ``max_events``
        livelock safety valve (shared by :meth:`run` and :meth:`step`)."""
        self.events_processed += 1
        if (self._max_events is not None
                and self.events_processed > self._max_events):
            raise SimulationError(
                f"exceeded max_events={self._max_events}; "
                "likely livelock")

    def step(self) -> bool:
        """Process a single event.  Returns False if the queue is empty
        or the simulator has been stopped.  Enforces the same
        ``max_events`` livelock safety valve as :meth:`run`.
        """
        if self._stopped:
            return False
        t = self._next_time()
        if t is None:
            return False
        self.now = t
        if t >= self._horizon:
            self._advance_horizon()
        bi = t & _MASK
        b = self._ring[bi]
        fn = b[0]
        args = b[1]
        del b[:2]
        if not b:
            self._occ &= _CLR[bi]
        self._count_event()
        fn(*args)
        return True

    # ------------------------------------------------------------------
    # snapshot / restore
    # ------------------------------------------------------------------

    def snapshot(self):
        """O(pending events) copy of the simulator's state.  Callback
        and argument references are shared with the snapshot; the bound
        arguments are component objects the caller is responsible for
        restoring in place."""
        buckets = [(i, b[:]) for i, b in enumerate(self._ring) if b]
        return (self.now, self._seq, self.events_processed,
                self._stopped, self._horizon,
                buckets, self._overflow[:], self._occ)

    def restore(self, snap) -> None:
        (now, seq, events_processed, stopped, horizon,
         buckets, overflow, occ) = snap
        self.now = now
        self._seq = seq
        self.events_processed = events_processed
        self._stopped = stopped
        self._horizon = horizon
        ring = self._ring
        for b in ring:
            if b:
                del b[:]
        for i, items in buckets:
            ring[i][:] = items
        self._overflow[:] = overflow
        self._occ = occ

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    @property
    def pending_events(self) -> int:
        return (sum(map(len, self._ring)) >> 1) + len(self._overflow)

    def peek_time(self) -> Optional[int]:
        """Time of the next event, or None if the queue is empty."""
        return self._next_time()

    def iter_pending(self) -> Iterator[Tuple[int, int, Callable[..., Any],
                                             tuple]]:
        """Yield every pending event as ``(when, seq, fn, args)``.

        The public view of the queue: iteration order is unspecified,
        but sorting the yielded tuples by ``(when, seq)`` gives exact
        dispatch order.  Ring events carry a synthetic per-call ``seq``
        (their relative order is what is meaningful); overflow events
        keep their real one, and since every overflow ``when`` exceeds
        every ring ``when`` the combined sort order is still exact.
        """
        ring = self._ring
        seq = 0
        for t in range(self.now, self._horizon):
            b = ring[t & _MASK]
            for j in range(0, len(b), 2):
                seq += 1
                yield (t, seq, b[j], b[j + 1])
        for when, real_seq, fn, args in sorted(self._overflow):
            yield (when, real_seq, fn, args)


class ControlledSimulator(Simulator):
    """A :class:`Simulator` whose same-cycle event order is a choice.

    The stock simulator resolves same-cycle ties by scheduling order
    (``seq``), which makes every run deterministic -- and blind to the
    interleavings a real machine could exhibit.  This subclass exposes
    that tie-break as an explicit *choice point*: whenever two or more
    events are ready at the minimum time, ``chooser(candidates)`` picks
    which one fires next; the rest are pushed back (keeping their seq
    numbers) and re-offered -- possibly alongside events the chosen
    handler just scheduled for the same cycle.

    ``candidates`` is the seq-ordered list of ready event tuples
    ``(time, seq, fn, args)``.  A ``None`` chooser (or one that always
    answers 0) reproduces the stock simulator exactly.  Every decision
    is appended to ``choice_log`` as ``(n_candidates, chosen_index)``,
    which is precisely the schedule the model checker replays.

    Unlike the base class, storage here *is* an explicit
    ``(when, seq, fn, args)`` heap: the model checker needs cheap
    snapshots at every branch point and same-cycle candidate batches as
    first-class values.  It manipulates them only through the public
    API -- :meth:`pop_ready_batch`, :meth:`push_events`,
    :meth:`pending_snapshot` and :meth:`step` -- so the two queue
    representations can evolve independently.
    """

    __slots__ = ("chooser", "choice_log", "_queue")

    def __init__(self, chooser: Optional[
            Callable[[List[tuple]], int]] = None,
            max_events: Optional[int] = None) -> None:
        super().__init__(max_events=max_events)
        self.chooser = chooser
        self.choice_log: List[Tuple[int, int]] = []
        self._queue: List[Tuple[int, int, Callable[..., Any], tuple]] = []

    # -- scheduling (heap representation) ------------------------------

    def schedule(self, delay: int, fn: Callable[..., Any], *args: Any) -> None:
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        self._seq += 1
        heapq.heappush(self._queue, (self.now + delay, self._seq, fn, args))

    def at(self, when: int, fn: Callable[..., Any], *args: Any) -> None:
        if when < self.now:
            raise SimulationError(
                f"cannot schedule in the past ({when} < {self.now})")
        self._seq += 1
        heapq.heappush(self._queue, (when, self._seq, fn, args))

    # -- public batch API (used by the model checker) ------------------

    def pop_ready_batch(self) -> List[tuple]:
        """Pop and return every event ready at the minimum pending
        time, in ``seq`` (i.e. scheduling) order.  The returned tuples
        are exactly what :meth:`push_events` accepts back."""
        queue = self._queue
        when = queue[0][0]
        batch = [heapq.heappop(queue)]
        while queue and queue[0][0] == when:
            batch.append(heapq.heappop(queue))
        return batch

    def push_events(self, events: Sequence[tuple]) -> None:
        """Return event tuples (from :meth:`pop_ready_batch` or a
        :meth:`pending_snapshot`) to the queue, preserving their
        recorded ``(when, seq)`` keys."""
        queue = self._queue
        for ev in events:
            heapq.heappush(queue, ev)

    def pending_snapshot(self) -> List[tuple]:
        """The pending ``(when, seq, fn, args)`` tuples as a list (heap
        order -- sort by ``(when, seq)`` for dispatch order).  Shares
        the immutable event tuples, not the queue itself."""
        return list(self._queue)

    def iter_pending(self) -> Iterator[Tuple[int, int, Callable[..., Any],
                                             tuple]]:
        return iter(self._queue)   # heap order; keys are exact

    def _pop_controlled(self) -> tuple:
        """Pop the next event, consulting the chooser on a tie."""
        batch = self.pop_ready_batch()
        if len(batch) == 1:
            return batch[0]
        idx = 0 if self.chooser is None else self.chooser(batch)
        if not 0 <= idx < len(batch):
            raise SimulationError(
                f"chooser returned {idx} for {len(batch)} candidates")
        self.choice_log.append((len(batch), idx))
        chosen = batch.pop(idx)
        self.push_events(batch)
        return chosen

    # -- execution -----------------------------------------------------

    def run(self, until: Optional[int] = None) -> None:
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        self._stopped = False
        try:
            while self._queue and not self._stopped:
                if until is not None and self._queue[0][0] > until:
                    self.now = until
                    return
                when, _seq, fn, args = self._pop_controlled()
                self.now = when
                self._count_event()
                fn(*args)
        finally:
            self._running = False

    def step(self, on_event: Optional[Callable] = None) -> bool:
        """Process a single event.  ``on_event(when, fn, args)`` runs
        after the choice is made but before the event executes (replay
        traces print the event first, so the violating transition is
        the last line of the trace)."""
        if self._stopped or not self._queue:
            return False
        when, _seq, fn, args = self._pop_controlled()
        self.now = when
        self._count_event()
        if on_event is not None:
            on_event(when, fn, args)
        fn(*args)
        return True

    # -- snapshot / introspection --------------------------------------

    def snapshot(self):
        # event tuples are immutable and shared with the snapshot
        return (self.now, self._seq, list(self._queue),
                self.events_processed, self._stopped,
                list(self.choice_log))

    def restore(self, snap) -> None:
        now, seq, queue, events_processed, stopped, choice_log = snap
        self.now = now
        self._seq = seq
        # the snapshot list was copied from a valid heap, so it is one
        self._queue[:] = queue
        self.events_processed = events_processed
        self._stopped = stopped
        self.choice_log[:] = choice_log

    @property
    def pending_events(self) -> int:
        return len(self._queue)

    def peek_time(self) -> Optional[int]:
        return self._queue[0][0] if self._queue else None
