"""Coherence protocols (subsystems S7-S10).

Each node has a single :class:`~repro.protocols.base.NodeCtrl` combining
the cache-side role (processor requests, fills, invalidations, updates)
and the home-side role (directory + memory for the blocks homed there).
"""

from repro.protocols.base import NodeCtrl
from repro.protocols.wi import WINodeCtrl
from repro.protocols.update import PUNodeCtrl, CUNodeCtrl
from repro.protocols.hybrid import HybridNodeCtrl
from repro.protocols.mesi import MESINodeCtrl

from repro.config import Protocol

_CTRL_CLASSES = {
    Protocol.WI: WINodeCtrl,
    Protocol.PU: PUNodeCtrl,
    Protocol.CU: CUNodeCtrl,
    Protocol.HYBRID: HybridNodeCtrl,
    Protocol.MESI: MESINodeCtrl,
}


def make_controller(machine, node: int) -> NodeCtrl:
    """Instantiate the controller class for the machine's protocol."""
    return _CTRL_CLASSES[machine.config.protocol](machine, node)


__all__ = ["NodeCtrl", "WINodeCtrl", "PUNodeCtrl", "CUNodeCtrl",
           "HybridNodeCtrl", "MESINodeCtrl", "make_controller"]
