"""Shared machinery of the per-node coherence controllers.

A :class:`NodeCtrl` plays two roles:

* **cache side** -- services its processor's reads/writes/atomics,
  drains the write buffer (one write transaction in flight, which also
  provides the per-processor write-ordering the queue-based locks rely
  on), tracks outstanding acks for release consistency, and reacts to
  incoming invalidations/updates/forward requests;
* **home side** -- owns the directory entries and the memory module for
  the blocks homed at this node, and serializes transactions per block.

Protocol subclasses implement the message handlers and the write-retire
transaction; everything protocol-independent (reference bookkeeping,
fences, flushes, eviction plumbing, the writeback-race continuation
mechanism) lives here.

Ordering note: the network fabric delivers messages to a given node in
global send order (a FIFO-NIC assumption, see
:mod:`repro.network.fabric`).  Together with home-side per-block
serialization this rules out stale-invalidation and fill/invalidate
races; the sequence-number guards on installs are kept as defensive
checks and to allow swapping in a non-FIFO fabric.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.engine import ControlledSimulator
from repro.isa.ops import apply_atomic, merge_word
from repro.memsys import (
    Cache, CacheState, Directory, MemoryModule, WriteBuffer,
)
from repro.memsys.cache import CACHE_STATES, EvictReason
from repro.memsys.writebuffer import PendingWrite
from repro.network.messages import MSG_TYPES, Message, MsgType


class PendingFill:
    """Bookkeeping for the (single) outstanding read miss."""

    __slots__ = ("block", "word", "cb", "inv_seq")

    def __init__(self, block: int, word: int, cb: Callable[[Any], None]):
        self.block = block
        self.word = word
        self.cb = cb
        self.inv_seq: Optional[int] = None


class HandlerTableError(RuntimeError):
    """A controller's HANDLERS table cannot serve every message its
    protocol spec routes to a node -- raised at construction, not as a
    dispatch error mid-simulation."""


#: (controller class, protocol) pairs already validated this process
_VALIDATED_HANDLER_TABLES: set = set()


def _validate_handler_table(cls, protocol) -> None:
    """Fail fast: every MsgType the protocol's declarative spec lists
    as receivable must have a HANDLERS entry on this class, and the
    class must not claim to handle messages the spec never routes to a
    node (the spec is the single source of truth for dispatch)."""
    key = (cls, protocol)
    if key in _VALIDATED_HANDLER_TABLES:
        return
    try:
        from repro.protospec import get_spec
        spec = get_spec(protocol)
    except KeyError:
        # no spec for this protocol (custom/experimental controller):
        # nothing to validate against
        _VALIDATED_HANDLER_TABLES.add(key)
        return
    receivable = spec.receivable()
    missing = sorted(m.name for m in receivable
                     if m not in cls.HANDLERS)
    if missing:
        details = []
        for name in missing:
            sides = [s.name for s in spec.sides
                     if name in s.message_events()]
            details.append(f"{name} ({'/'.join(sides)} side)")
        raise HandlerTableError(
            f"{cls.__name__} cannot run protocol "
            f"{spec.protocol!r}: no HANDLERS entry for "
            f"{', '.join(details)}; every message the {spec.protocol} "
            f"spec routes to a node needs a handler before the "
            f"simulation starts")
    extra = sorted(m.name for m in cls.HANDLERS if m not in receivable)
    if extra:
        raise HandlerTableError(
            f"{cls.__name__} handles {', '.join(extra)} but the "
            f"{spec.protocol!r} spec never routes "
            f"{'them' if len(extra) > 1 else 'it'} to a node; either "
            f"the spec table is missing receive rows or the handler "
            f"entry is dead")
    _VALIDATED_HANDLER_TABLES.add(key)


#: (controller class, protocol) -> dense handler-name tuple indexed by
#: ``MsgType.index``, compiled once per process
_DISPATCH_TABLES: Dict[tuple, Tuple[Optional[str], ...]] = {}


def compile_dispatch(cls, protocol) -> Tuple[Optional[str], ...]:
    """Compile the per-class dispatch table from the protocol's
    declarative spec: exactly the message types
    :meth:`~repro.protospec.model.ProtocolSpec.receivable` lists get a
    handler-name slot (``MsgType.index``-indexed); everything else is
    ``None`` and fails loudly at :meth:`NodeCtrl.receive`.

    Falls back to the class's own HANDLERS keys when the protocol has
    no spec (custom/experimental controllers).
    """
    key = (cls, protocol)
    table = _DISPATCH_TABLES.get(key)
    if table is not None:
        return table
    _validate_handler_table(cls, protocol)
    try:
        from repro.protospec import get_spec
        routed = get_spec(protocol).receivable()
    except KeyError:
        routed = cls.HANDLERS.keys()
    names: List[Optional[str]] = [None] * len(MSG_TYPES)
    for mtype in routed:
        names[mtype.index] = cls.HANDLERS[mtype]
    table = _DISPATCH_TABLES[key] = tuple(names)
    return table


class NodeCtrl:
    """Base class for WI / PU / CU node controllers."""

    #: cache states in which a local read hits (protocol-specific)
    READABLE_STATES: tuple = ()

    def __init__(self, machine, node: int) -> None:
        self.machine = machine
        self.sim = machine.sim
        self.config = machine.config
        self.net = machine.net
        self.node = node

        cfg = self.config
        self.cache = Cache(cfg.num_cache_lines, cfg.block_size_bytes,
                           cfg.cache_associativity)
        self.wb = WriteBuffer(cfg.write_buffer_entries)
        self.mem = MemoryModule(self.sim, cfg, node)
        self.directory = Directory(node)

        self.miss_cls = machine.miss_classifier
        self.upd_cls = machine.update_classifier
        self.tracer = machine.tracer
        #: coherence sanitizer, or None when checking is off (cached so
        #: the hot paths pay one attribute test per hook)
        self.san = getattr(machine, "sanitizer", None)

        #: invalidation/update acks not yet collected (release consistency)
        self.outstanding_acks = 0
        self._retiring = False
        self._fence_waiters: List[Callable[[], None]] = []
        self._drain_waiters: List[Callable[[], None]] = []
        self._pending_fill: Optional[PendingFill] = None
        #: outstanding atomic operation (at most one; WB is drained first)
        self._pending_atomic: Optional[dict] = None
        #: home side: in-progress transaction per block, re-dispatched
        #: after a writeback race resolves (FWD_NACK path)
        self._txn: Dict[int, Tuple[Callable[[Message], None], Message]] = {}

        #: bitmask over state codes: ``1 << code`` set when a local read
        #: hits in that state (hot-path form of READABLE_STATES)
        self._readable_mask = 0
        for s in self.READABLE_STATES:
            self._readable_mask |= 1 << s.code

        #: address-split scalars hoisted out of the per-access path
        #: (None when the block size is not a power of two)
        self._block_shift = cfg._block_shift
        self._word_mask = cfg._word_mask
        self._num_procs = cfg.num_procs

        self._handlers = self._build_handlers()
        # Direct dispatch: the fabric delivers straight into the handler,
        # skipping receive()'s per-message indirection.  Disabled when
        # the tracer wants a record of every delivery and under the
        # model checker, whose invariants and replay traces identify
        # in-flight messages by the Network._deliver callback.
        direct = (not self.tracer.enabled
                  and not isinstance(self.sim, ControlledSimulator))
        if direct and self.net.pooling_active:
            # pooled delivery: recycle each message once its handler
            # returns, unless the handler pinned it (``msg.keep``, set
            # by _begin_txn for home transactions -- those are released
            # by _end_txn instead).  The release is inlined rather than
            # a MessagePool.release call: it runs once per delivered
            # message, and the call overhead alone is measurable.
            pool = self.net.pool

            if pool.debug:
                def wrap(handler, _r=pool.release):
                    def deliver(msg, _h=handler, _r=_r):
                        _h(msg)
                        if not msg.keep:
                            _r(msg)
                    return deliver
            else:
                def wrap(handler, _pool=pool, _free=pool.free):
                    def deliver(msg, _h=handler, _pool=_pool,
                                _free=_free):
                        _h(msg)
                        if msg.keep or _pool.frozen:
                            return
                        if msg.in_pool:
                            raise RuntimeError(
                                f"double release of pooled message "
                                f"mid={msg.mid}")
                        msg.in_pool = True
                        msg.value = None
                        msg.data = None
                        msg.operand = None
                        msg.result = None
                        _pool.released += 1
                        _free[msg.ti].append(msg)
                    return deliver

            dispatch = [wrap(h) if h is not None else None
                        for h in self._handlers]
        else:
            dispatch = self._handlers
        self.net.register(node, self.receive,
                          dispatch if direct else None)

    # ------------------------------------------------------------------
    # subclass wiring
    # ------------------------------------------------------------------

    #: MsgType -> unbound method name, defined by subclasses
    HANDLERS: Dict[MsgType, str] = {}

    def _build_handlers(self) -> List[Optional[Callable[[Message], None]]]:
        # a flat list indexed by MsgType.index: the dispatch runs once
        # per delivered message, and list indexing skips the enum hash.
        # The populated slots come from the protocol spec's receivable
        # set, not from HANDLERS directly -- the declarative tables are
        # the source of truth for what a node may be sent.
        names = compile_dispatch(type(self), self.config.protocol)
        return [getattr(self, name) if name is not None else None
                for name in names]

    def receive(self, msg: Message) -> None:
        handler = self._handlers[msg.mtype.index]
        if handler is None:
            # a message the active protocol does not speak is a protocol
            # bug, never a droppable stray: record it for the checker
            # report (when the sanitizer is on) and fail loudly either
            # way -- silent ignores are exactly what the model checker
            # is meant to rule out
            if self.san is not None:
                self.san.report.violation(
                    "sanitizer", "unhandled-message",
                    f"{type(self).__name__} has no handler for "
                    f"{msg.mtype} (src={msg.src})",
                    cycle=self.sim.now, node=self.node, block=msg.block)
            raise RuntimeError(
                f"{type(self).__name__} has no handler for {msg.mtype}")
        if self.tracer.enabled:
            self.tracer.record(self.sim.now, "msg", self.node,
                               msg.mtype.value, src=msg.src, blk=msg.block)
        handler(msg)

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------

    def home_of(self, block: int) -> int:
        return block % self._num_procs

    def _send(self, mtype: MsgType, dst: int, block: int,
              requester: int = -1, word: Optional[int] = None,
              value: Any = None, data: Optional[dict] = None,
              nacks: int = 0, seq: int = -1, op: Optional[str] = None,
              operand: Any = None, result: Any = None,
              retain: bool = False, write_id: Optional[int] = None,
              mask: Optional[int] = None) -> None:
        # explicit parameters (no **kw dict) feeding the fabric's
        # pooled fast path positionally
        self.net.post(mtype, self.node, dst, block, requester, word,
                      value, data, nacks, seq, op, operand, result,
                      retain, write_id, mask)

    def _ref(self, block: int, word: int) -> None:
        """Record a shared reference for both classifiers and reset the
        competitive-update counter."""
        self.miss_cls.record_reference(self.node, block, word)
        self.upd_cls.record_reference(self.node, block, word)
        line = self.cache.lookup(block)
        if line is not None:
            line.update_count = 0

    # ------------------------------------------------------------------
    # processor interface: read
    # ------------------------------------------------------------------

    def local_view(self, block: int, word: int):
        """The locally visible value of ``word``: queued writes composed
        over the cached copy (reads bypass + forward from the write
        buffer).  Returns ``(hit, value)``; ``hit`` is False when
        neither the write buffer nor the cache can supply it.

        For sub-word stores the base value is the newest queued
        full-word write, else the cached word (if the block still lacks
        a local base, uninitialized-memory zero is assumed -- exact for
        programs that do not read words they partially wrote before the
        store retires, which holds for all shipped workloads).
        """
        pending = self.wb.writes_to(word)
        base = None
        start = 0
        for i in range(len(pending) - 1, -1, -1):
            if pending[i].mask is None:
                base = pending[i].value
                start = i + 1
                break
        if base is None:
            line = self.cache.lookup(block)
            if line is not None and \
                    self._readable_mask >> line.state_code & 1:
                base = line.data.get(word, 0)
            elif not pending:
                return False, None
            else:
                base = 0
        value = base
        for w in pending[start:]:
            value = merge_word(value, w.value, w.mask)
        return True, value

    def read(self, addr: int, cb: Callable[[Any], None]) -> None:
        shift = self._block_shift
        if shift is not None:
            block = addr >> shift
            word = addr & self._word_mask
        else:
            cfg = self.config
            word = cfg.word_of(addr)
            block = cfg.block_of(addr)
        # fused fast path: one cache probe serves both the classifier
        # bookkeeping (_ref) and the hit test.  Equivalent to
        # _ref + local_view because with no buffered write to ``word``
        # the locally visible value *is* the cached word.
        self.miss_cls.record_reference(self.node, block, word)
        self.upd_cls.record_reference(self.node, block, word)
        line = self.cache.lookup(block)
        if line is not None:
            line.update_count = 0
            if (self._readable_mask >> line.state_code & 1
                    and not self.wb.writes_to(word)):
                value = line.data.get(word, 0)
                if self.san is not None:
                    # nothing of ours is buffered: the value read is a
                    # coherent copy and must come from the golden history
                    self.san.check_read(self.node, block, word, value,
                                        state=line.state.value)
                self.sim.schedule(1, cb, value)
                return

        hit, value = self.local_view(block, word)
        if hit:
            if self.san is not None and not self.wb.writes_to(word):
                ln = self.cache.peek(block)
                self.san.check_read(
                    self.node, block, word, value,
                    state=ln.state.value if ln is not None else "")
            self.sim.schedule(1, cb, value)
            return

        if self._pending_fill is not None:
            raise RuntimeError(
                f"node {self.node}: second outstanding read (blocking "
                f"processor invariant violated)")
        self.miss_cls.record_miss(self.node, block, word)
        self._pending_fill = PendingFill(block, word, cb)
        self._send(MsgType.READ_REQ, self.home_of(block), block,
                   requester=self.node)

    def _complete_fill(self, msg: Message, state) -> None:
        """Install a fill and resume the stalled read.  ``state`` is an
        int state code (enum members also accepted)."""
        if type(state) is not int:
            state = state.code
        pend = self._pending_fill
        if pend is None or pend.block != msg.block:
            raise RuntimeError(
                f"node {self.node}: unexpected fill for blk {msg.block}")
        self._pending_fill = None
        data = msg.data or {}
        if self.san is not None:
            self.san.check_read(self.node, msg.block, pend.word,
                                data.get(pend.word, 0),
                                state=CACHE_STATES[state].value)
        evicted = self.cache.install(msg.block, state, data, msg.seq)
        if evicted is not None:
            self._evict(evicted.block, evicted.state, evicted.data,
                        EvictReason.REPLACEMENT)
        value = data.get(pend.word, 0)
        # compose any still-buffered own stores over the fill
        for w in self.wb.writes_to(pend.word):
            value = merge_word(value, w.value, w.mask)
        # re-register the missing reference now that the write that
        # invalidated us has certainly been logged (true/false sharing
        # resolution); does not inflate the reference count
        self.miss_cls.record_reference(self.node, msg.block, pend.word,
                                       count=False)
        self.upd_cls.record_reference(self.node, msg.block, pend.word)
        if pend.inv_seq is not None and pend.inv_seq >= msg.seq:
            # an invalidation overtook the fill: consume the value once,
            # then drop the block
            if self.san is not None:
                self.san.event(
                    "inv-overtook-fill",
                    f"invalidation (seq {pend.inv_seq}) arrived before "
                    f"the fill (seq {msg.seq}); value consumed once, "
                    f"block dropped", node=self.node, block=msg.block)
            self.cache.invalidate(msg.block)
        pend.cb(value)

    # ------------------------------------------------------------------
    # processor interface: write
    # ------------------------------------------------------------------

    def write(self, addr: int, value: Any, cb: Callable[[Any], None],
              mask: Optional[int] = None) -> None:
        cfg = self.config
        word = cfg.word_of(addr)
        block = cfg.block_of(addr)
        self._ref(block, word)
        if self.san is not None:
            self.san.check_release_store(self, word, value)
        pw = PendingWrite(addr, word, block, value, mask)
        if self.wb.full:
            self.wb.on_space(lambda: self._enqueue_write(pw, cb))
        else:
            self._enqueue_write(pw, cb)

    def _enqueue_write(self, pw: PendingWrite,
                       cb: Callable[[Any], None]) -> None:
        self.wb.enqueue(pw)
        if self.config.sequential_consistency:
            # SC ablation: the processor stalls until the write has
            # globally performed (buffer drained + all acks collected)
            self._maybe_retire()
            self.fence(lambda: cb(None))
        else:
            self.sim.schedule(1, cb, None)
            self._maybe_retire()

    def _maybe_retire(self) -> None:
        if self._retiring:
            return
        head = self.wb.head()
        if head is None:
            return
        self._retiring = True
        self._retire(head)

    def _retire(self, pw: PendingWrite) -> None:
        raise NotImplementedError

    def _retire_done(self) -> None:
        self.wb.pop()
        self._retiring = False
        self._check_fence()
        if self.wb.empty and self._drain_waiters:
            waiters, self._drain_waiters = self._drain_waiters, []
            for w in waiters:
                w()
        self._maybe_retire()

    # ------------------------------------------------------------------
    # processor interface: fences / drains
    # ------------------------------------------------------------------

    def fence(self, cb: Callable[[], None]) -> None:
        """Release point: write buffer drained + all acks collected."""
        if self.san is not None:
            # re-verify completion at fire time, independently of
            # _fence_ok (catches a broken fence implementation)
            cb = self.san.wrap_fence(self, cb)
        if self._fence_ok():
            self.sim.schedule(1, cb)
        else:
            self._fence_waiters.append(cb)

    def _fence_ok(self) -> bool:
        return (self.wb.empty and not self._retiring
                and self.outstanding_acks == 0)

    def _check_fence(self) -> None:
        if self._fence_waiters and self._fence_ok():
            waiters, self._fence_waiters = self._fence_waiters, []
            for cb in waiters:
                self.sim.schedule(1, cb)

    def _ack_collected(self, n: int = 1) -> None:
        # May go transiently negative: sharers ack to the writer as soon
        # as they see the invalidation/update, which can beat the home's
        # reply carrying the expected-ack count.  Fences are still safe:
        # they also require the write buffer (and any atomic) to be
        # idle, at which point every expected-ack count has been added.
        self.outstanding_acks -= n
        self._check_fence()

    def _when_drained(self, cb: Callable[[], None]) -> None:
        """Run ``cb`` once the write buffer is empty and no write
        transaction is in flight (atomics force this)."""
        if self.wb.empty and not self._retiring:
            cb()
        else:
            self._drain_waiters.append(cb)

    # ------------------------------------------------------------------
    # processor interface: atomics (protocol-specific execution)
    # ------------------------------------------------------------------

    def atomic(self, opname: str, addr: int, operand: Any,
               cb: Callable[[Any], None]) -> None:
        cfg = self.config
        word = cfg.word_of(addr)
        block = cfg.block_of(addr)
        self._when_drained(
            lambda: self._start_atomic(opname, block, word, operand, cb))

    def _start_atomic(self, opname: str, block: int, word: int,
                      operand: Any, cb: Callable[[Any], None]) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # processor interface: flushes
    # ------------------------------------------------------------------

    def flush_block(self, addr: int, cb: Callable[[], None]) -> None:
        block = self.config.block_of(addr)
        if block in self.wb.pending_blocks():
            # a write to this block is still buffered; a hardware flush
            # drains it first (the update-conscious MCS lock flushes a
            # queue node immediately after writing to it)
            self._when_drained(lambda: self.flush_block(addr, cb))
            return
        line = self.cache.lookup(block)
        if line is None:
            self.sim.schedule(1, cb)
            return
        self.cache.invalidate(block)
        self._evict(block, line.state, line.data, EvictReason.FLUSH)
        self.sim.schedule(1, cb)

    def flush_all(self, cb: Callable[[], None]) -> None:
        blocks = self.cache.resident_blocks()
        for block in blocks:
            line = self.cache.lookup(block)
            self.cache.invalidate(block)
            self._evict(block, line.state, line.data, EvictReason.FLUSH)
        self.sim.schedule(max(1, len(blocks)), cb)

    def _evict(self, block: int, state: CacheState, data: Dict[int, Any],
               reason: EvictReason) -> None:
        """Classification + protocol plumbing for a block leaving the
        cache (replacement or flush)."""
        self.miss_cls.record_leave(self.node, block, reason)
        self.upd_cls.record_block_gone(self.node, block)
        self._evict_protocol(block, state, data)

    def _evict_protocol(self, block: int, state: CacheState,
                        data: Dict[int, Any]) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # home side: transaction plumbing
    # ------------------------------------------------------------------

    def _begin_txn(self, msg: Message,
                   body: Callable[[Message], None]) -> None:
        """Acquire the block's directory entry, remember the transaction
        (for writeback-race re-dispatch) and run its body."""
        # pin before acquire: a queued start keeps a reference to msg
        # past the delivery wrapper's release point
        msg.keep = True

        def start() -> None:
            self._txn[msg.block] = (body, msg)
            body(msg)
        self.directory.acquire(msg.block, start)

    def _end_txn(self, block: int) -> None:
        txn = self._txn.pop(block, None)
        self.directory.release(block)
        if txn is not None:
            # the transaction's request message was pinned by
            # _begin_txn; its lifetime ends here (no-op off-pool)
            self.net.release(txn[1])

    def _retry_txn(self, block: int) -> None:
        """Re-dispatch the in-flight transaction after a writeback race
        resolved (the directory entry is no longer DIRTY)."""
        body, msg = self._txn[block]
        body(msg)

    def on_fwd_nack(self, msg: Message) -> None:
        """A forward/recall raced with the ex-owner's writeback.  By the
        FIFO delivery guarantee the writeback has already been processed,
        so the transaction can simply be retried."""
        self._retry_txn(msg.block)

    # ------------------------------------------------------------------
    # snapshot / restore
    # ------------------------------------------------------------------

    def snapshot_state(self):
        """O(state) copy of everything this controller mutates during a
        run.  Objects referenced by pending events / closures
        (PendingFill, the atomic record, transaction messages) are
        shared with the snapshot and restored in place, so callbacks
        captured before the snapshot stay valid after a restore."""
        pf = self._pending_fill
        return (
            self.cache.snapshot_state(),
            self.wb.snapshot_state(),
            self.mem.snapshot_state(),
            self.directory.snapshot_state(),
            self.outstanding_acks,
            self._retiring,
            tuple(self._fence_waiters),
            tuple(self._drain_waiters),
            pf,
            pf.inv_seq if pf is not None else None,
            self._pending_atomic,
            dict(self._txn),
        )

    def restore_state(self, snap) -> None:
        (cache_snap, wb_snap, mem_snap, dir_snap, acks, retiring,
         fence_waiters, drain_waiters, pf, inv_seq, pending_atomic,
         txn) = snap
        self.cache.restore_state(cache_snap)
        self.wb.restore_state(wb_snap)
        self.mem.restore_state(mem_snap)
        self.directory.restore_state(dir_snap)
        self.outstanding_acks = acks
        self._retiring = retiring
        self._fence_waiters = list(fence_waiters)
        self._drain_waiters = list(drain_waiters)
        self._pending_fill = pf
        if pf is not None:
            pf.inv_seq = inv_seq
        self._pending_atomic = pending_atomic
        self._txn = dict(txn)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def quiesced(self) -> bool:
        """True when this node has no buffered or in-flight work."""
        return (self.wb.empty and not self._retiring
                and self.outstanding_acks == 0
                and self._pending_fill is None
                and not self._txn)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<{type(self).__name__} node={self.node}>"


ATOMIC_APPLY = apply_atomic
