"""Write-invalidate protocol (DASH-style, release consistency).

Transactions, with the home serializing per block:

* **read miss** -- READ_REQ to home; served from memory if clean, or
  forwarded to the dirty owner (FETCH_FWD), who sends the data to the
  requester (OWNER_DATA) and a sharing writeback to the home
  (SHARING_WB), demoting itself to SHARED.
* **write to SHARED block** -- UPGRADE_REQ (the paper's *exclusive
  request* transaction); the home invalidates the other sharers, whose
  acks go directly to the writer (release consistency: the writer only
  waits for them at release/fence points).
* **write miss** -- RDEX_REQ; like a read miss but invalidating; a dirty
  owner transfers ownership to the requester (OWNER_DATA_EX +
  DIRTY_TRANSFER to the home).
* **atomic** -- executed in the cache controller after obtaining an
  exclusive copy via the same transactions (paper section 3.1).
* **M eviction** -- WRITEBACK to home.  S evictions are silent (DASH
  keeps possibly-stale full-map sharer bits; invalidations to
  non-caching nodes are acked harmlessly).

A FETCH/RDEX forward that races with the ex-owner's in-flight writeback
is FWD_NACKed; the FIFO delivery guarantee means the writeback has
already landed at the home by then, so the transaction simply retries
and is served from (now current) memory.

Hot-path convention: cache/directory states are compared and assigned
as plain int codes (``STATE_*`` / ``DIR_*``) and the sharer bitmap is
manipulated with integer bit ops; :mod:`repro.staticcheck` extracts
both the enum and the int-code spellings when diffing handlers against
the declarative tables.
"""

from __future__ import annotations

from typing import Any, Callable, Dict

from repro.isa.ops import apply_atomic, merge_word
from repro.memsys.cache import (
    STATE_MODIFIED, STATE_SHARED, CacheState, EvictReason,
)
from repro.memsys.directory import (
    DIR_DIRTY, DIR_SHARED, DIR_UNOWNED, mask_nodes,
)
from repro.network.messages import Message, MsgType
from repro.protocols.base import NodeCtrl


class WINodeCtrl(NodeCtrl):
    """Per-node controller for the write-invalidate protocol."""

    READABLE_STATES = (CacheState.SHARED, CacheState.MODIFIED)

    HANDLERS = {
        # home side
        MsgType.READ_REQ: "_home_read",
        MsgType.RDEX_REQ: "_home_rdex",
        MsgType.UPGRADE_REQ: "_home_upgrade",
        MsgType.SHARING_WB: "_home_sharing_wb",
        MsgType.DIRTY_TRANSFER: "_home_dirty_transfer",
        MsgType.WRITEBACK: "_home_writeback",
        MsgType.FWD_NACK: "on_fwd_nack",
        # cache side
        MsgType.READ_REPLY: "_cache_fill_shared",
        MsgType.OWNER_DATA: "_cache_fill_shared",
        MsgType.RDEX_REPLY: "_cache_fill_exclusive",
        MsgType.OWNER_DATA_EX: "_cache_fill_exclusive",
        MsgType.UPGRADE_REPLY: "_cache_upgrade_reply",
        MsgType.INV: "_cache_inv",
        MsgType.INV_ACK: "_cache_inv_ack",
        MsgType.FETCH_FWD: "_cache_fetch_fwd",
        MsgType.FETCH_INV_FWD: "_cache_fetch_inv_fwd",
    }

    # ==================================================================
    # cache side: write retirement
    # ==================================================================

    def _apply_store(self, line, pw) -> None:
        """Apply a (possibly sub-word) store to an exclusive copy."""
        merged = merge_word(line.data.get(pw.word, 0), pw.value, pw.mask)
        if self.san is not None:
            self.san.record_value(pw.word, merged)
        self.cache.write_word(pw.block, pw.word, merged)
        self.miss_cls.record_write(pw.block, pw.word, self.node)

    def _retire(self, pw) -> None:
        line = self.cache.lookup(pw.block)
        if line is not None and line.state_code == STATE_MODIFIED:
            # exclusive: write locally, no traffic
            self._apply_store(line, pw)
            self.sim.schedule(1, self._retire_done)
        elif line is not None and line.state_code == STATE_SHARED:
            # the paper's "exclusive request" transaction
            self.miss_cls.record_upgrade(self.node, pw.block)
            self._send(MsgType.UPGRADE_REQ, self.home_of(pw.block),
                       pw.block, requester=self.node, word=pw.word)
        else:
            # write miss
            self.miss_cls.record_miss(self.node, pw.block, pw.word)
            self._send(MsgType.RDEX_REQ, self.home_of(pw.block),
                       pw.block, requester=self.node, word=pw.word)

    def _cache_upgrade_reply(self, msg: Message) -> None:
        if self._pending_atomic is not None and \
                self._pending_atomic["block"] == msg.block:
            self._finish_atomic(msg, needs_install=False)
            return
        pw = self.wb.head()
        line = self.cache.lookup(msg.block)
        if line is None:
            # conflict-evicted while the upgrade was in flight: the home
            # granted ownership, so fetch the data with a fresh RDEX
            self._send(MsgType.RDEX_REQ, self.home_of(msg.block),
                       msg.block, requester=self.node, word=pw.word)
            return
        line.state_code = STATE_MODIFIED
        line.seq = msg.seq
        if self.san is not None:
            self.san.on_exclusive(self.node, msg.block)
        self._apply_store(line, pw)
        self.outstanding_acks += msg.nacks
        self._retire_done()

    def _cache_fill_exclusive(self, msg: Message) -> None:
        if self._pending_atomic is not None and \
                self._pending_atomic["block"] == msg.block:
            self._finish_atomic(msg, needs_install=True)
            return
        pw = self.wb.head()
        evicted = self.cache.install(msg.block, STATE_MODIFIED,
                                     msg.data or {}, msg.seq)
        if evicted is not None:
            self._evict(evicted.block, evicted.state, evicted.data,
                        EvictReason.REPLACEMENT)
        if self.san is not None:
            self.san.on_exclusive(self.node, msg.block)
        self._apply_store(self.cache.lookup(msg.block), pw)
        self.outstanding_acks += msg.nacks
        self._retire_done()

    # ==================================================================
    # cache side: read fills
    # ==================================================================

    def _cache_fill_shared(self, msg: Message) -> None:
        self._complete_fill(msg, STATE_SHARED)

    # ==================================================================
    # cache side: atomics (computed in the cache controller)
    # ==================================================================

    def _start_atomic(self, opname: str, block: int, word: int,
                      operand: Any, cb: Callable[[Any], None]) -> None:
        self._ref(block, word)
        line = self.cache.lookup(block)
        if line is not None and line.state_code == STATE_MODIFIED:
            old = line.data.get(word, 0)
            new, result = apply_atomic(opname, old, operand)
            if self.san is not None:
                self.san.record_value(word, new)
            self.cache.write_word(block, word, new)
            self.miss_cls.record_write(block, word, self.node)
            self.sim.schedule(1, cb, result)
            return
        self._pending_atomic = {
            "opname": opname, "block": block, "word": word,
            "operand": operand, "cb": cb,
        }
        if line is not None and line.state_code == STATE_SHARED:
            self.miss_cls.record_upgrade(self.node, block)
            self._send(MsgType.UPGRADE_REQ, self.home_of(block), block,
                       requester=self.node, word=word)
        else:
            self.miss_cls.record_miss(self.node, block, word)
            self._send(MsgType.RDEX_REQ, self.home_of(block), block,
                       requester=self.node, word=word)

    def _finish_atomic(self, msg: Message, needs_install: bool) -> None:
        pa = self._pending_atomic
        if needs_install:
            evicted = self.cache.install(msg.block, STATE_MODIFIED,
                                         msg.data or {}, msg.seq)
            if evicted is not None:
                self._evict(evicted.block, evicted.state, evicted.data,
                            EvictReason.REPLACEMENT)
        else:
            line = self.cache.lookup(msg.block)
            if line is None:
                # evicted while the upgrade was in flight: refetch
                self._send(MsgType.RDEX_REQ, self.home_of(msg.block),
                           msg.block, requester=self.node,
                           word=pa["word"])
                return
            line.state_code = STATE_MODIFIED
            line.seq = msg.seq
        self._pending_atomic = None
        if self.san is not None:
            self.san.on_exclusive(self.node, msg.block)
        old = self.cache.read_word(msg.block, pa["word"])
        new, result = apply_atomic(pa["opname"], old, pa["operand"])
        if self.san is not None:
            self.san.record_value(pa["word"], new)
        self.cache.write_word(msg.block, pa["word"], new)
        self.miss_cls.record_write(msg.block, pa["word"], self.node)
        self.outstanding_acks += msg.nacks
        self.sim.schedule(1, pa["cb"], result)

    # ==================================================================
    # cache side: incoming coherence
    # ==================================================================

    def _cache_inv(self, msg: Message) -> None:
        line = self.cache.lookup(msg.block)
        if line is not None and line.seq <= msg.seq:
            self.upd_cls.record_block_gone(self.node, msg.block)
            self.cache.invalidate(msg.block)
        elif line is not None:
            # install seq newer than the invalidation: the INV targeted
            # a copy we no longer hold (defensive guard, promoted from a
            # silent drop to a sanitizer event)
            if self.san is not None:
                self.san.event(
                    "stale-inv-ignored",
                    f"invalidation (seq {msg.seq}) older than the "
                    f"installed copy (seq {line.seq}); ignored",
                    node=self.node, block=msg.block)
        elif (self._pending_fill is not None
              and self._pending_fill.block == msg.block):
            prev = self._pending_fill.inv_seq
            self._pending_fill.inv_seq = (
                msg.seq if prev is None else max(prev, msg.seq))
        self._send(MsgType.INV_ACK, msg.requester, msg.block)

    def _cache_inv_ack(self, msg: Message) -> None:
        self._ack_collected()

    def _cache_fetch_fwd(self, msg: Message) -> None:
        """Home forwarded a read to us (we own the block dirty)."""
        line = self.cache.lookup(msg.block)
        if line is not None and line.state_code == STATE_MODIFIED:
            data = dict(line.data)
            line.state_code = STATE_SHARED
            self._send(MsgType.OWNER_DATA, msg.requester, msg.block,
                       data=data, seq=msg.seq)
            self._send(MsgType.SHARING_WB, msg.src, msg.block,
                       data=data, requester=msg.requester)
        else:
            self._send(MsgType.FWD_NACK, msg.src, msg.block,
                       requester=msg.requester)

    def _cache_fetch_inv_fwd(self, msg: Message) -> None:
        """Home forwarded a write/rdex to us; transfer ownership."""
        line = self.cache.lookup(msg.block)
        if line is not None and line.state_code == STATE_MODIFIED:
            data = dict(line.data)
            self.miss_cls.record_leave(self.node, msg.block,
                                       EvictReason.INVALIDATION)
            self.upd_cls.record_block_gone(self.node, msg.block)
            self.cache.invalidate(msg.block)
            self._send(MsgType.OWNER_DATA_EX, msg.requester, msg.block,
                       data=data, seq=msg.seq, nacks=0)
            self._send(MsgType.DIRTY_TRANSFER, msg.src, msg.block,
                       requester=msg.requester)
        else:
            self._send(MsgType.FWD_NACK, msg.src, msg.block,
                       requester=msg.requester)

    # ==================================================================
    # cache side: evictions
    # ==================================================================

    def _evict_protocol(self, block: int, state: CacheState,
                        data: Dict[int, Any]) -> None:
        if state is CacheState.MODIFIED:
            self._send(MsgType.WRITEBACK, self.home_of(block), block,
                       data=dict(data))
        # SHARED evictions are silent (DASH full-map keeps stale bits)

    # ==================================================================
    # home side
    # ==================================================================

    def _home_read(self, msg: Message) -> None:
        self._begin_txn(msg, self._read_txn)

    def _read_txn(self, msg: Message) -> None:
        ent = self.directory.entry(msg.block)
        if ent.dstate == DIR_DIRTY:
            self._send(MsgType.FETCH_FWD, ent.owner, msg.block,
                       requester=msg.requester, seq=ent.next_seq())
            return  # completes on SHARING_WB (or retries on FWD_NACK)
        seq = ent.next_seq()
        t = self.mem.reserve(self.mem.block_access_cycles())

        def finish() -> None:
            data = self.mem.read_block(msg.block)
            self._send(MsgType.READ_REPLY, msg.requester, msg.block,
                       data=data, seq=seq)
            ent.dstate = DIR_SHARED
            ent.sharer_mask |= 1 << msg.requester
            self._end_txn(msg.block)

        self.sim.at(t, finish)

    def _issue_invalidations(self, msg: Message, invs, seq: int) -> int:
        """Issue one invalidation per sharer at the directory
        controller's iteration rate; returns the absolute completion
        time of the issue loop."""
        c = self.config.prop_issue_cycles
        block = msg.block
        req = msg.requester
        sched = self.sim.schedule
        for k, s in enumerate(invs):
            self.miss_cls.record_leave(s, block,
                                       EvictReason.INVALIDATION)
            # method + args, no per-sharer closure (and no reference to
            # the pooled msg outliving its delivery)
            sched(k * c, self._send_inv, s, block, req, seq)
        return self.sim.now + len(invs) * c

    def _send_inv(self, dst: int, block: int, requester: int,
                  seq: int) -> None:
        self._send(MsgType.INV, dst, block, requester=requester, seq=seq)

    def _home_rdex(self, msg: Message) -> None:
        self._begin_txn(msg, self._rdex_txn)

    def _rdex_txn(self, msg: Message) -> None:
        ent = self.directory.entry(msg.block)
        if ent.dstate == DIR_DIRTY:
            self._send(MsgType.FETCH_INV_FWD, ent.owner, msg.block,
                       requester=msg.requester, seq=ent.next_seq())
            return  # completes on DIRTY_TRANSFER (or retries on NACK)
        seq = ent.next_seq()
        invs = mask_nodes(ent.sharer_mask & ~(1 << msg.requester))
        issue_done = self._issue_invalidations(msg, invs, seq)
        t = self.mem.reserve(self.mem.block_access_cycles())

        def finish() -> None:
            data = self.mem.read_block(msg.block)
            self._send(MsgType.RDEX_REPLY, msg.requester, msg.block,
                       data=data, nacks=len(invs), seq=seq)
            ent.dstate = DIR_DIRTY
            ent.owner = msg.requester
            ent.sharer_mask = 0
            # the entry must not reopen before the DIRTY commit above:
            # a queued read popped against the pre-commit state would
            # hand out a SHARED copy alongside the new owner's M copy
            if issue_done <= t:
                self._end_txn(msg.block)

        self.sim.at(t, finish)
        if issue_done > t:
            self.sim.at(issue_done, self._end_txn, msg.block)

    def _home_upgrade(self, msg: Message) -> None:
        self._begin_txn(msg, self._upgrade_txn)

    def _upgrade_txn(self, msg: Message) -> None:
        ent = self.directory.entry(msg.block)
        if ent.dstate == DIR_SHARED and \
                ent.sharer_mask >> msg.requester & 1:
            seq = ent.next_seq()
            invs = mask_nodes(ent.sharer_mask & ~(1 << msg.requester))
            issue_done = self._issue_invalidations(msg, invs, seq)
            t = self.mem.reserve(self.mem.dir_cycles())

            def finish() -> None:
                self._send(MsgType.UPGRADE_REPLY, msg.requester,
                           msg.block, nacks=len(invs), seq=seq)
                ent.dstate = DIR_DIRTY
                ent.owner = msg.requester
                ent.sharer_mask = 0
                # as in _rdex_txn: commit before the entry reopens
                if issue_done <= t:
                    self._end_txn(msg.block)

            self.sim.at(t, finish)
            if issue_done > t:
                self.sim.at(issue_done, self._end_txn, msg.block)
        else:
            # the requester's copy was invalidated (or ownership moved)
            # while its upgrade was in flight: serve data instead
            self._rdex_txn(msg)

    def _home_sharing_wb(self, msg: Message) -> None:
        """Ex-dirty owner demoted to SHARED; completes a forwarded read."""
        ent = self.directory.entry(msg.block)
        t = self.mem.reserve(self.mem.block_access_cycles())
        # capture locals, not msg: the pooled message is recycled when
        # this handler returns, before ``finish`` runs
        block = msg.block
        data = msg.data or {}
        sharers = (1 << msg.src) | (1 << msg.requester)

        def finish() -> None:
            self.mem.write_block(block, data)
            ent.dstate = DIR_SHARED
            ent.owner = -1
            ent.sharer_mask = sharers
            self._end_txn(block)

        self.sim.at(t, finish)

    def _home_dirty_transfer(self, msg: Message) -> None:
        """Ownership moved between caches; completes a forwarded rdex."""
        ent = self.directory.entry(msg.block)
        if ent.early_wb_mask >> msg.requester & 1:
            # the new owner already evicted and wrote back before this
            # transfer arrived: memory is current, recording it as the
            # dirty owner now would strand the block (every forward to
            # it would NACK and retry forever)
            ent.early_wb_mask &= ~(1 << msg.requester)
            ent.dstate = DIR_UNOWNED
            ent.owner = -1
            ent.sharer_mask = 0
            self._end_txn(msg.block)
            return
        ent.dstate = DIR_DIRTY
        ent.owner = msg.requester
        ent.sharer_mask = 0
        self._end_txn(msg.block)

    def _home_writeback(self, msg: Message) -> None:
        """Eviction writeback; processed immediately (never queued) so a
        racing forward's retry observes the directory already updated."""
        ent = self.directory.entry(msg.block)
        if ent.dstate == DIR_DIRTY and ent.owner == msg.src:
            ent.dstate = DIR_UNOWNED
            ent.owner = -1
        elif msg.block in self._txn:
            # mid-transaction writeback from a node the directory does
            # not (yet) record as owner: ownership is moving to it
            # cache-to-cache and the DIRTY_TRANSFER is still in flight
            ent.early_wb_mask |= 1 << msg.src
        t = self.mem.reserve(self.mem.block_access_cycles())
        # method + args (not a closure over the pooled msg)
        self.sim.at(t, self.mem.write_block, msg.block, msg.data or {})
