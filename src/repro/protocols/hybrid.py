"""Per-block protocol selection: the FLASH / Typhoon scenario.

The paper's motivation is "the advent of machines that support multiple
coherence protocols within the same application", and its conclusion is
that "both the protocol and implementation [of each construct] should
be taken into account".  The hybrid controller makes that executable:
every shared allocation carries a protocol tag (see
:meth:`repro.runtime.memory_map.MemoryMap.use_protocol`), and each
block is managed end-to-end by its own protocol -- WI, PU, or CU --
while all of them share the node's cache, write buffer, memory module,
directory, and release-consistency ack accounting.

This works because a block's coherence life is fully self-contained:
its cache states, directory entry, and message types never mix with
another block's, and the shared resources (write-buffer retirement
order, fence semantics, NIC/memory occupancy) are protocol-agnostic.
The dispatchers below route the few entry points the base class leaves
protocol-specific -- write retirement, atomics, read transactions,
fills, evictions, writebacks -- to the WI or PU/CU implementation that
owns the block.
"""

from __future__ import annotations

from typing import Any, Callable, Dict

from repro.config import Protocol
from repro.memsys.cache import CacheLine, CacheState
from repro.network.messages import Message, MsgType
from repro.protocols.update import CUNodeCtrl, PUNodeCtrl
from repro.protocols.wi import WINodeCtrl


class HybridNodeCtrl(CUNodeCtrl, WINodeCtrl):
    """Node controller multiplexing WI / PU / CU per block."""

    READABLE_STATES = (CacheState.SHARED, CacheState.MODIFIED,
                       CacheState.VALID, CacheState.RETAINED)

    # union of both handler tables, with the colliding message types
    # routed through per-block dispatchers
    HANDLERS = {
        **WINodeCtrl.HANDLERS,
        **PUNodeCtrl.HANDLERS,
        MsgType.READ_REQ: "_home_read_hybrid",
        MsgType.READ_REPLY: "_cache_read_reply_hybrid",
        MsgType.WRITEBACK: "_home_writeback_hybrid",
    }

    # ------------------------------------------------------------------
    # policy
    # ------------------------------------------------------------------

    def _block_protocol(self, block: int) -> Protocol:
        return self.machine.memmap.protocol_of_block(block)

    def _updates(self, block: int) -> bool:
        return self._block_protocol(block).is_update_based

    # ------------------------------------------------------------------
    # protocol-specific entry points, dispatched per block
    # ------------------------------------------------------------------

    def _retire(self, pw) -> None:
        if self._updates(pw.block):
            PUNodeCtrl._retire(self, pw)
        else:
            WINodeCtrl._retire(self, pw)

    def _start_atomic(self, opname: str, block: int, word: int,
                      operand: Any, cb: Callable[[Any], None]) -> None:
        if self._updates(block):
            PUNodeCtrl._start_atomic(self, opname, block, word,
                                     operand, cb)
        else:
            WINodeCtrl._start_atomic(self, opname, block, word,
                                     operand, cb)

    def _evict_protocol(self, block: int, state: CacheState,
                        data: Dict[int, Any]) -> None:
        if self._updates(block):
            PUNodeCtrl._evict_protocol(self, block, state, data)
        else:
            WINodeCtrl._evict_protocol(self, block, state, data)

    def _drop_check(self, line: CacheLine, msg: Message) -> bool:
        # only CU-managed blocks run the competitive counter
        if self._block_protocol(msg.block) is Protocol.CU:
            return CUNodeCtrl._drop_check(self, line, msg)
        return False

    # ------------------------------------------------------------------
    # colliding message types
    # ------------------------------------------------------------------

    def _home_read_hybrid(self, msg: Message) -> None:
        body = (PUNodeCtrl._read_txn if self._updates(msg.block)
                else WINodeCtrl._read_txn)
        self._begin_txn(msg, body.__get__(self))

    def _cache_read_reply_hybrid(self, msg: Message) -> None:
        if self._updates(msg.block):
            PUNodeCtrl._cache_read_reply(self, msg)
        else:
            WINodeCtrl._cache_fill_shared(self, msg)

    def _home_writeback_hybrid(self, msg: Message) -> None:
        if self._updates(msg.block):
            PUNodeCtrl._home_writeback(self, msg)
        else:
            WINodeCtrl._home_writeback(self, msg)
