"""Update-based protocols: pure update (PU) and competitive update (CU).

PU (paper section 3.1): a processor writes through its cache to the home
node.  The home applies the write to memory and sends update messages to
the other processors sharing the block, plus a message to the writer
with the number of acknowledgements to expect; sharers update their
caches and ack *to the writer*.  The writer only stalls waiting for acks
at release points (release consistency).

PU optimizations implemented:

1. **retain-private**: when the home receives an update for a block
   cached only by the updating processor, the writer is told to retain
   future updates locally (the block is effectively private; the cache
   line moves to RETAINED and writes stop generating traffic until a
   remote read recalls the block);
2. **fork flush**: the runtime flushes the parent processor's cache when
   a parallel process is created (see
   :meth:`repro.runtime.machine.Machine.spawn`).

CU adds a per-cached-block counter of updates received since the last
local reference; when it reaches the threshold (4 in the paper) the node
self-invalidates the block and sends a DROP_NOTICE asking the home to
stop sending updates.  Local references reset the counter.

Atomic instructions execute *at the home memory*: the requester sends an
ATOMIC_REQ, the home performs the operation, replies with the result,
and propagates the new value to all sharers (whose acks are collected by
the requester under release consistency).

Hot-path convention: as in :mod:`repro.protocols.wi`, cache/directory
states are plain int codes (``STATE_*`` / ``DIR_*``) and the sharer
bitmap is manipulated with integer bit ops.
"""

from __future__ import annotations

from typing import Any, Callable, Dict

from repro.isa.ops import apply_atomic, merge_word
from repro.memsys.cache import (
    STATE_RETAINED, STATE_VALID, CacheLine, CacheState, EvictReason,
)
from repro.memsys.directory import (
    DIR_DIRTY, DIR_SHARED, DIR_UNOWNED, mask_nodes,
)
from repro.network.messages import Message, MsgType
from repro.protocols.base import NodeCtrl


class PUNodeCtrl(NodeCtrl):
    """Per-node controller for the pure-update protocol."""

    READABLE_STATES = (CacheState.VALID, CacheState.RETAINED)

    HANDLERS = {
        # home side
        MsgType.READ_REQ: "_home_read",
        MsgType.UPDATE: "_home_update",
        MsgType.ATOMIC_REQ: "_home_atomic",
        MsgType.RECALL_REPLY: "_home_recall_reply",
        MsgType.WRITEBACK: "_home_writeback",
        MsgType.DROP_NOTICE: "_home_drop_notice",
        MsgType.FWD_NACK: "on_fwd_nack",
        # cache side
        MsgType.READ_REPLY: "_cache_read_reply",
        MsgType.UPD_PROP: "_cache_upd_prop",
        MsgType.UPD_ACK: "_cache_upd_ack",
        MsgType.WRITER_ACK: "_cache_writer_ack",
        MsgType.RECALL: "_cache_recall",
        MsgType.ATOMIC_REPLY: "_cache_atomic_reply",
    }

    # ==================================================================
    # cache side: write retirement (write-through with one transaction
    # in flight, which also gives per-processor write ordering)
    # ==================================================================

    def _retire(self, pw) -> None:
        line = self.cache.lookup(pw.block)
        if line is None:
            # write-allocate: fetch the block, then write through.  This
            # is what makes MCS competitors end up caching each other's
            # queue nodes (the sharing pathology of section 4.1).
            self.miss_cls.record_miss(self.node, pw.block, pw.word)
            self._send(MsgType.READ_REQ, self.home_of(pw.block), pw.block,
                       requester=self.node, write_id=pw.write_id)
            return  # resumes in _cache_read_reply with the write_id echoed
        if line.state_code == STATE_RETAINED:
            # effectively private: keep the write local
            merged = merge_word(line.data.get(pw.word, 0), pw.value,
                                pw.mask)
            if self.san is not None:
                self.san.record_value(pw.word, merged)
            self.cache.write_word(pw.block, pw.word, merged)
            line.dirty_words[pw.word] = merged
            self.miss_cls.record_write(pw.block, pw.word, self.node)
            self.sim.schedule(1, self._retire_done)
            return
        # write-through updates our own copy immediately
        merged = merge_word(line.data.get(pw.word, 0), pw.value, pw.mask)
        if self.san is not None:
            self.san.record_value(pw.word, merged)
        self.cache.write_word(pw.block, pw.word, merged)
        self._send(MsgType.UPDATE, self.home_of(pw.block), pw.block,
                   word=pw.word, value=pw.value, mask=pw.mask,
                   write_id=pw.write_id)
        # completes on WRITER_ACK

    def _cache_writer_ack(self, msg: Message) -> None:
        head = self.wb.head()
        if head is None or head.write_id != msg.write_id:
            raise RuntimeError(
                f"node {self.node}: WRITER_ACK for write "
                f"{msg.write_id} does not match retiring write {head}")
        self.outstanding_acks += msg.nacks
        if msg.retain:
            line = self.cache.lookup(msg.block)
            if line is not None:
                line.state_code = STATE_RETAINED
                if self.san is not None:
                    self.san.on_exclusive(self.node, msg.block)
            else:
                # we lost the copy before the grant arrived: cancel it
                self._send(MsgType.DROP_NOTICE, self.home_of(msg.block),
                           msg.block)
        self._retire_done()

    def _cache_upd_ack(self, msg: Message) -> None:
        self._ack_collected()

    # ==================================================================
    # cache side: incoming updates
    # ==================================================================

    def _cache_upd_prop(self, msg: Message) -> None:
        line = self.cache.lookup(msg.block)
        if line is None:
            # raced with our drop/flush/eviction; still ack the writer
            self.upd_cls.record_stale_update(self.node, msg.block)
            self._send(MsgType.UPD_ACK, msg.requester, msg.block)
            return
        if self._drop_check(line, msg):
            self._send(MsgType.UPD_ACK, msg.requester, msg.block)
            return
        if self.san is not None:
            self.san.check_update(self.node, msg.block, msg.word,
                                  msg.value)
        # Merge under the writer's mask rather than overwriting: the
        # propagated value is the home's merge at *serialization* time,
        # so bytes outside the mask may predate a store this node has
        # already applied locally (and not yet written through).  A
        # full-word overwrite here loses that store if the copy is
        # later retained as the dirty owner.
        merged = merge_word(line.data.get(msg.word, 0), msg.value,
                            msg.mask)
        merged = self._shadow_pending_stores(msg, merged)
        self.cache.write_word(msg.block, msg.word, merged)
        self.upd_cls.record_update(self.node, msg.block, msg.word)
        self._send(MsgType.UPD_ACK, msg.requester, msg.block)

    def _shadow_pending_stores(self, msg: Message, merged: int) -> int:
        """Store-buffer shadowing: a write of ours still queued (or
        awaiting WRITER_ACK) serializes after this update -- its ack
        would have preceded the UPD_PROP on the home->us channel
        otherwise -- so re-apply it on top lest the incoming value
        roll the word back to the older serialization."""
        for pw in self.wb.writes_to(msg.word):
            merged = merge_word(merged, pw.value, pw.mask)
        return merged

    def _drop_check(self, line: CacheLine, msg: Message) -> bool:
        """Competitive-update hook; pure update never drops."""
        return False

    # ==================================================================
    # cache side: read fills / recalls
    # ==================================================================

    def _cache_read_reply(self, msg: Message) -> None:
        if msg.write_id is not None:
            # write-allocate fill: install, then write through
            pw = self.wb.head()
            if pw is None or pw.write_id != msg.write_id:
                raise RuntimeError(
                    f"node {self.node}: allocate fill for write "
                    f"{msg.write_id} does not match retiring write {pw}")
            evicted = self.cache.install(msg.block, STATE_VALID,
                                         msg.data or {}, msg.seq)
            if evicted is not None:
                self._evict(evicted.block, evicted.state, evicted.data,
                            EvictReason.REPLACEMENT)
            line = self.cache.lookup(pw.block)
            merged = merge_word(line.data.get(pw.word, 0), pw.value,
                                pw.mask)
            if self.san is not None:
                self.san.record_value(pw.word, merged)
            self.cache.write_word(pw.block, pw.word, merged)
            self._send(MsgType.UPDATE, self.home_of(pw.block), pw.block,
                       word=pw.word, value=pw.value, mask=pw.mask,
                       write_id=pw.write_id)
            return
        self._complete_fill(msg, STATE_VALID)

    def _cache_recall(self, msg: Message) -> None:
        """Home needs our retained (dirty) copy back."""
        line = self.cache.lookup(msg.block)
        if line is not None:
            data = dict(line.data)
            line.state_code = STATE_VALID
            line.dirty_words.clear()
            self._send(MsgType.RECALL_REPLY, msg.src, msg.block, data=data)
        else:
            # evicted: our WRITEBACK has already reached the home (FIFO)
            self._send(MsgType.FWD_NACK, msg.src, msg.block)

    # ==================================================================
    # cache side: atomics (performed at the home memory)
    # ==================================================================

    def _start_atomic(self, opname: str, block: int, word: int,
                      operand: Any, cb: Callable[[Any], None]) -> None:
        # a memory-side atomic is a shared reference, but it does NOT
        # consult the local cached copy: it neither makes previously
        # received updates useful nor counts as the kind of reference
        # that justifies keeping the block up to date
        self.miss_cls.record_reference(self.node, block, word)
        self._pending_atomic = {
            "opname": opname, "block": block, "word": word, "cb": cb,
        }
        self._send(MsgType.ATOMIC_REQ, self.home_of(block), block,
                   requester=self.node, word=word, op=opname,
                   operand=operand)

    def _cache_atomic_reply(self, msg: Message) -> None:
        pa = self._pending_atomic
        if pa is None or pa["block"] != msg.block:
            raise RuntimeError(
                f"node {self.node}: unexpected ATOMIC_REPLY for "
                f"blk {msg.block}")
        self._pending_atomic = None
        line = self.cache.lookup(msg.block)
        if line is not None:
            # our own copy gets the new value with the reply
            self.cache.write_word(msg.block, msg.word, msg.value)
            line.update_count = 0
        self.outstanding_acks += msg.nacks
        self.sim.schedule(1, pa["cb"], msg.result)

    # ==================================================================
    # cache side: evictions
    # ==================================================================

    def _evict_protocol(self, block: int, state: CacheState,
                        data: Dict[int, Any]) -> None:
        if state is CacheState.RETAINED:
            self._send(MsgType.WRITEBACK, self.home_of(block), block,
                       data=dict(data))
        else:
            # stop receiving updates for a block we no longer hold
            self._send(MsgType.DROP_NOTICE, self.home_of(block), block)

    # ==================================================================
    # home side
    # ==================================================================

    def _home_read(self, msg: Message) -> None:
        self._begin_txn(msg, self._read_txn)

    def _read_txn(self, msg: Message) -> None:
        ent = self.directory.entry(msg.block)
        if ent.dstate == DIR_DIRTY:
            self._send(MsgType.RECALL, ent.owner, msg.block)
            return  # resumes on RECALL_REPLY (or FWD_NACK retry)
        seq = ent.next_seq()
        t = self.mem.reserve(self.mem.block_access_cycles())

        def finish() -> None:
            data = self.mem.read_block(msg.block)
            self._send(MsgType.READ_REPLY, msg.requester, msg.block,
                       data=data, seq=seq, write_id=msg.write_id)
            ent.dstate = DIR_SHARED
            ent.sharer_mask |= 1 << msg.requester
            self._end_txn(msg.block)

        self.sim.at(t, finish)

    def _home_update(self, msg: Message) -> None:
        self._begin_txn(msg, self._update_txn)

    def _update_txn(self, msg: Message) -> None:
        ent = self.directory.entry(msg.block)
        if ent.dstate == DIR_DIRTY:
            if ent.owner == msg.src:
                raise RuntimeError(
                    f"home {self.node}: write-through from the retaining "
                    f"owner {msg.src} for blk {msg.block}")
            self._send(MsgType.RECALL, ent.owner, msg.block)
            return
        t = self.mem.reserve(self.mem.word_access_cycles())

        def finish() -> None:
            merged = merge_word(self.mem.read_word(msg.word), msg.value,
                                msg.mask)
            if self.san is not None:
                self.san.record_value(msg.word, merged)
            self.mem.write_word(msg.word, merged)
            self.miss_cls.record_write(msg.block, msg.word, msg.src)
            receivers = mask_nodes(ent.sharer_mask & ~(1 << msg.src))
            if receivers:
                issue_done = self._issue_props(msg.block, msg.word,
                                               merged, msg.src,
                                               receivers,
                                               mask=msg.mask)
                def ack() -> None:
                    self._send(MsgType.WRITER_ACK, msg.src, msg.block,
                               nacks=len(receivers),
                               write_id=msg.write_id)
                    self._end_txn(msg.block)
                self.sim.at(issue_done, ack)
            else:
                retain = (self.config.retain_private
                          and ent.sharer_mask >> msg.src & 1 == 1)
                if retain:
                    ent.dstate = DIR_DIRTY
                    ent.owner = msg.src
                    ent.sharer_mask = 0
                self._send(MsgType.WRITER_ACK, msg.src, msg.block,
                           nacks=0, retain=retain, write_id=msg.write_id)
                self._end_txn(msg.block)

        self.sim.at(t, finish)

    def _home_atomic(self, msg: Message) -> None:
        self._begin_txn(msg, self._atomic_txn)

    def _atomic_txn(self, msg: Message) -> None:
        ent = self.directory.entry(msg.block)
        if ent.dstate == DIR_DIRTY:
            self._send(MsgType.RECALL, ent.owner, msg.block)
            return
        t = self.mem.reserve(self.mem.word_access_cycles())

        def finish() -> None:
            old = self.mem.read_word(msg.word)
            new, result = apply_atomic(msg.op, old, msg.operand)
            if self.san is not None:
                self.san.record_value(msg.word, new)
            self.mem.write_word(msg.word, new)
            self.miss_cls.record_write(msg.block, msg.word, msg.requester)
            receivers = mask_nodes(ent.sharer_mask
                                   & ~(1 << msg.requester))
            # the reply goes out right away; the propagation loop
            # occupies the directory controller afterwards
            self._send(MsgType.ATOMIC_REPLY, msg.requester, msg.block,
                       word=msg.word, value=new, result=result,
                       nacks=len(receivers))
            issue_done = self._issue_props(msg.block, msg.word, new,
                                           msg.requester, receivers)
            self.sim.at(issue_done, self._end_txn, msg.block)

        self.sim.at(t, finish)

    def _issue_props(self, block: int, word: int, value, writer: int,
                     receivers, mask=None) -> int:
        """Issue one update propagation per sharer at the directory
        controller's iteration rate; returns the absolute completion
        time of the issue loop.  ``mask`` is the originating store's
        byte mask (``None`` for full-word stores and atomics): the
        receivers only apply the masked bytes, so a propagation cannot
        clobber a disjoint sub-word store they applied locally after
        this one serialized."""
        c = self.config.prop_issue_cycles
        sched = self.sim.schedule
        for k, s in enumerate(receivers):
            # method + args, no per-receiver closure
            sched(k * c, self._send_prop, s, block, word, value, mask,
                  writer)
        return self.sim.now + len(receivers) * c

    def _send_prop(self, dst: int, block: int, word: int, value,
                   mask, writer: int) -> None:
        self._send(MsgType.UPD_PROP, dst, block, word=word, value=value,
                   mask=mask, requester=writer)

    def _home_recall_reply(self, msg: Message) -> None:
        """The retaining owner flushed its dirty copy back; resume the
        stalled transaction."""
        ent = self.directory.entry(msg.block)
        t = self.mem.reserve(self.mem.block_access_cycles())
        # capture locals, not msg: the pooled message is recycled when
        # this handler returns, before ``finish`` runs
        block = msg.block
        data = msg.data or {}
        src_bit = 1 << msg.src

        def finish() -> None:
            self.mem.write_block(block, data)
            ent.dstate = DIR_SHARED
            ent.owner = -1
            ent.sharer_mask |= src_bit  # the ex-owner stays a sharer
            self._retry_txn(block)

        self.sim.at(t, finish)

    def _home_writeback(self, msg: Message) -> None:
        """Eviction/flush of a retained block; processed immediately so a
        racing recall's retry observes the directory already updated."""
        ent = self.directory.entry(msg.block)
        if ent.dstate == DIR_DIRTY and ent.owner == msg.src:
            ent.dstate = DIR_UNOWNED
            ent.owner = -1
        ent.sharer_mask &= ~(1 << msg.src)
        t = self.mem.reserve(self.mem.block_access_cycles())
        # method + args (not a closure over the pooled msg)
        self.sim.at(t, self.mem.write_block, msg.block, msg.data or {})

    def _home_drop_notice(self, msg: Message) -> None:
        """A sharer dropped/flushed its copy (or cancels a retain grant
        that arrived after it lost the line)."""
        ent = self.directory.entry(msg.block)
        ent.sharer_mask &= ~(1 << msg.src)
        if ent.dstate == DIR_DIRTY and ent.owner == msg.src:
            # retain-cancel: memory is current (the owner never wrote
            # locally in RETAINED state)
            ent.dstate = DIR_UNOWNED
            ent.owner = -1
        elif ent.dstate == DIR_SHARED and not ent.sharer_mask:
            ent.dstate = DIR_UNOWNED


class CUNodeCtrl(PUNodeCtrl):
    """Competitive update: PU plus threshold-based self-invalidation."""

    def _drop_check(self, line: CacheLine, msg: Message) -> bool:
        line.update_count += 1
        if line.update_count < self.config.update_threshold:
            return False
        # threshold reached: this update is a *drop* update; the block
        # self-invalidates and the home is told to stop updating us
        self.upd_cls.record_drop_update(self.node, msg.block, msg.word)
        self.miss_cls.record_leave(self.node, msg.block, EvictReason.DROP)
        self.cache.invalidate(msg.block)
        self._send(MsgType.DROP_NOTICE, self.home_of(msg.block), msg.block)
        return True
