"""repro: reproduction of Bianchini, Carrera & Kontothanassis,
"The Interaction of Parallel Programming Constructs and Coherence
Protocols" (PPoPP 1997).

An execution-driven simulator of a DASH-like directly-connected
multiprocessor supporting write-invalidate (WI), pure-update (PU) and
competitive-update (CU) coherence protocols, together with the paper's
synchronization algorithms (ticket / MCS / update-conscious MCS locks;
centralized / dissemination / tree barriers; parallel / sequential
reductions), communication-traffic classification, and the experiment
harness regenerating every figure of the paper's evaluation.
"""

from repro.config import (
    ALL_PROTOCOLS, DEFAULT_BENCH_SCALE, MachineConfig, PAPER_MACHINE_SIZES,
    Protocol, ExperimentScale,
)
from repro.runtime import Machine, MemoryMap, Processor, RunResult
from repro.isa import (
    CompareSwap, Compute, Fence, FetchAdd, FetchStore, Flush, FlushCache,
    Fork, Join, Read, SpinUntil, Write, fetch_and_decrement,
)
from repro.classify import (
    MissClass, MissClassifier, UpdateClass, UpdateClassifier,
)
from repro.engine import Simulator, Tracer, DeadlockError

__version__ = "1.0.0"

__all__ = [
    "ALL_PROTOCOLS", "DEFAULT_BENCH_SCALE", "MachineConfig",
    "PAPER_MACHINE_SIZES", "Protocol", "ExperimentScale",
    "Machine", "MemoryMap", "Processor", "RunResult",
    "CompareSwap", "Compute", "Fence", "FetchAdd", "FetchStore", "Flush",
    "FlushCache", "Fork", "Join", "Read", "SpinUntil", "Write",
    "fetch_and_decrement",
    "MissClass", "MissClassifier", "UpdateClass", "UpdateClassifier",
    "Simulator", "Tracer", "DeadlockError",
    "__version__",
]
